//! Jobs and identifiers.
//!
//! Besides the raw `p_ij` row, every [`Job`] carries three **derived
//! caches** computed once at construction time:
//!
//! * `p̂_j = min_i { p_ij : p_ij < ∞ }` ([`Job::p_hat`]) — the cheapest
//!   eligible size, the job-side input to the pruned dispatch bounds
//!   (`osr_core::dispatch`). Before this cache every arrival rescanned
//!   the whole `sizes` row — an `O(m)` pass the ROADMAP flagged as the
//!   remaining dispatch head-room after PR 2's tournament index.
//! * an eligibility bitmask ([`Job::elig`], [`EligMask`]) — which
//!   machines have finite `p_ij`, so restricted-assignment consumers can
//!   test/count eligibility without touching the float row.
//! * **rack-local `p̂` minima** ([`Job::rack_p_hat`], [`RackPHat`]) —
//!   for restricted rows, the finite-size minimum per 64-machine rack
//!   (one entry per [`EligMask`] word) plus a coarser per-4096-machine
//!   layer. The pruned dispatch search bounds each subtree with the
//!   *range's own* cheapest eligible size instead of the global `p̂`,
//!   which is what makes the bounds bite on rack-affinity workloads
//!   where a job's sizes vary across its rack.
//!
//! The caches are pure functions of `sizes`; [`Job::validate`] (and
//! therefore [`crate::Instance::new`]) rejects a job whose caches have
//! been desynchronized by direct mutation of the public `sizes` field.

use crate::time::{valid_magnitude, valid_positive};
use osr_dstruct::kernel::{self, default_kernel_mode};

/// Machine-eligibility bitmask cached on a [`Job`].
///
/// The canonical representation is chosen by [`Job`]'s constructors:
/// fully-eligible jobs (every `p_ij` finite — the common dense case)
/// use [`EligMask::All`] and allocate nothing; any restricted row gets
/// one bit per machine, LSB-first within 64-bit words, **plus** a
/// summary layer with one bit per word (`summary[k/64]` bit `k % 64`
/// set iff `words[k] != 0`). The summary is what lets the mask-guided
/// dispatch descent (`osr_dstruct::MaskView`) answer "any eligible
/// machine in this subtree's range?" with a single word read for
/// subtree spans up to 4096 machines. Both layers are pure functions
/// of the size row, so derived `PartialEq` on jobs stays exact.
#[derive(Debug, Clone, PartialEq)]
pub enum EligMask {
    /// Every machine is eligible (no allocation).
    All,
    /// Restricted eligibility, one bit per machine.
    Words {
        /// Bit `i % 64` of word `i / 64` is set iff machine `i` is
        /// eligible.
        words: Box<[u64]>,
        /// One bit per word of `words` (set iff that word is
        /// non-zero) — the subtree-intersection fast path.
        summary: Box<[u64]>,
    },
}

impl EligMask {
    /// Derives the canonical mask from a size row.
    pub fn from_sizes(sizes: &[f64]) -> Self {
        if sizes.iter().all(|p| p.is_finite()) {
            return EligMask::All;
        }
        let mut words = vec![0u64; sizes.len().div_ceil(64)];
        for (i, p) in sizes.iter().enumerate() {
            if p.is_finite() {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        let mut summary = vec![0u64; words.len().div_ceil(64)];
        kernel::summarize_words4(default_kernel_mode(), &words, &mut summary);
        EligMask::Words {
            words: words.into_boxed_slice(),
            summary: summary.into_boxed_slice(),
        }
    }

    /// Whether machine `i` is eligible.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        match self {
            EligMask::All => true,
            EligMask::Words { words, .. } => (words[i / 64] >> (i % 64)) & 1 == 1,
        }
    }

    /// Number of eligible machines among `machines` total.
    pub fn count(&self, machines: usize) -> usize {
        match self {
            EligMask::All => machines,
            EligMask::Words { words, .. } => kernel::popcount_words4(default_kernel_mode(), words),
        }
    }

    /// Whether any machine is eligible.
    pub fn any(&self) -> bool {
        match self {
            EligMask::All => true,
            EligMask::Words { words, .. } => words.iter().any(|&x| x != 0),
        }
    }

    /// The `(words, summary)` layers of a restricted mask, or `None`
    /// for [`EligMask::All`] — the borrowed form the mask-guided
    /// dispatch search (`osr_dstruct::MaskView`) consumes without
    /// copying.
    #[inline]
    pub fn word_layers(&self) -> Option<(&[u64], &[u64])> {
        match self {
            EligMask::All => None,
            EligMask::Words { words, summary } => Some((words, summary)),
        }
    }

    /// Whether this mask has the word width a mask for `machines`
    /// machines must have ([`EligMask::All`] fits any width). A
    /// too-narrow mask makes [`EligMask::test`] panic on high machine
    /// indices; a too-wide one silently answers from padding bits —
    /// [`Job::validate`] rejects both.
    pub fn width_matches(&self, machines: usize) -> bool {
        match self {
            EligMask::All => true,
            EligMask::Words { words, summary } => {
                words.len() == machines.div_ceil(64) && summary.len() == words.len().div_ceil(64)
            }
        }
    }
}

/// Rack-local finite-size minima cached on a [`Job`] beside its
/// [`EligMask`] — the job-side input that lets the pruned dispatch
/// search bound a subtree with the *range's own* cheapest eligible
/// size instead of the global `p̂`.
///
/// Two layers, mirroring the mask's word layout exactly:
///
/// * [`RackPHat::word_min`] — one entry per 64-machine mask word:
///   `min { p_ij : p_ij < ∞, i ∈ word }`, `∞` when the word has no
///   eligible machine;
/// * [`RackPHat::block_min`] — one entry per 64 words (4096 machines):
///   the min over that block's `word_min` entries.
///
/// A tournament subtree's machine range is a power-of-two span aligned
/// to its size, so [`RackPHat::range_min`] resolves it with a single
/// array read for spans up to 4096 machines (the word for spans ≤ 64,
/// the block beyond) and a short block scan above. The resolved value
/// is the minimum over a *superset* of the range (the containing
/// word/block), hence always `≤ p_ij` for every eligible machine in
/// the range — a sound bound input, merely looser when the span is
/// smaller than its container.
///
/// Built only for restricted rows ([`EligMask::Words`]); dense rows
/// keep the allocation-free global `p̂`, for which every rack minimum
/// would be recomputed anyway. Like the other caches this is a pure
/// function of `sizes`, and [`Job::validate`] rejects a desynchronized
/// instance (bit-exact comparison).
#[derive(Debug, Clone)]
pub struct RackPHat {
    word_min: Box<[f64]>,
    block_min: Box<[f64]>,
}

impl PartialEq for RackPHat {
    fn eq(&self, other: &Self) -> bool {
        // Bit-exact: the staleness check must not let "equal-looking"
        // drifted values through (mirrors the p̂ `to_bits` comparison).
        let bits = |xs: &[f64], ys: &[f64]| {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(a, b)| a.to_bits() == b.to_bits())
        };
        bits(&self.word_min, &other.word_min) && bits(&self.block_min, &other.block_min)
    }
}

impl RackPHat {
    /// Derives the two layers from a size row; `None` for fully
    /// eligible rows (the global `p̂` covers those without allocation).
    pub fn from_sizes(sizes: &[f64]) -> Option<Self> {
        if sizes.iter().all(|p| p.is_finite()) {
            return None;
        }
        let mut word_min = vec![f64::INFINITY; sizes.len().div_ceil(64)].into_boxed_slice();
        for (i, p) in sizes.iter().enumerate() {
            if p.is_finite() && *p < word_min[i / 64] {
                word_min[i / 64] = *p;
            }
        }
        let mut block_min = vec![f64::INFINITY; word_min.len().div_ceil(64)].into_boxed_slice();
        for (k, w) in word_min.iter().enumerate() {
            if *w < block_min[k / 64] {
                block_min[k / 64] = *w;
            }
        }
        Some(RackPHat {
            word_min,
            block_min,
        })
    }

    /// Per-64-machine-rack minima (one entry per [`EligMask`] word).
    #[inline]
    pub fn word_min(&self) -> &[f64] {
        &self.word_min
    }

    /// Per-4096-machine-block minima (one entry per 64 words).
    #[inline]
    pub fn block_min(&self) -> &[f64] {
        &self.block_min
    }

    /// Lower bound on `min { p_ij : p_ij < ∞ }` over the aligned
    /// machine range `[lo, lo + span)` (`span` a power of two, `lo` a
    /// multiple of `span` — exactly the ranges tournament nodes
    /// cover). `O(1)` for `span ≤ 4096`; one block entry per 4096
    /// machines beyond. Ranges wholly past the row (a padding subtree)
    /// resolve to `∞`.
    #[inline]
    pub fn range_min(&self, lo: usize, span: usize) -> f64 {
        if span <= 64 {
            // The range lies inside one word (span divides 64).
            self.word_min.get(lo / 64).copied().unwrap_or(f64::INFINITY)
        } else if span <= 4096 {
            // Inside one block (span divides 4096).
            self.block_min
                .get(lo / 4096)
                .copied()
                .unwrap_or(f64::INFINITY)
        } else {
            let first = (lo / 4096).min(self.block_min.len());
            let last = ((lo + span) / 4096).min(self.block_min.len());
            // Entries are positive-or-∞ (never NaN, never -0.0), so the
            // chunked lane regrouping returns the scalar fold's minimum
            // bit for bit.
            kernel::min4_with_index(default_kernel_mode(), &self.block_min[first..last])
                .map_or(f64::INFINITY, |(v, _)| v)
        }
    }
}

/// Identifier of a job within an [`crate::Instance`].
///
/// Job ids are dense indices `0..n` into `Instance::jobs`, so they can be
/// used directly as `Vec` indices throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Identifier of a machine within an [`crate::Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

impl MachineId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A job in the unrelated-machines model.
///
/// `sizes[i]` is the processing requirement `p_ij` on machine `i`:
///
/// * in the flow-time problem (§2) it is a **processing time** — the job
///   occupies machine `i` for exactly `sizes[i]` time units;
/// * in the speed-scaling problems (§3, §4) it is a **volume** — running
///   at constant speed `s`, the job occupies the machine for
///   `sizes[i] / s` time units.
///
/// A size of `f64::INFINITY` encodes "job cannot run on this machine"
/// (restricted-assignment workloads). A job may be infinite on *every*
/// machine — such a job is representable input (it can arrive over the
/// wire in a trace) and schedulers reject it at arrival with
/// [`crate::RejectReason::Ineligible`] rather than refusing the whole
/// instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Dense id; equals the job's index in its instance.
    pub id: JobId,
    /// Release time `r_j ≥ 0`. The job is unknown to the scheduler before
    /// this instant.
    pub release: f64,
    /// Weight `w_j > 0` (§3). Flow-time workloads use weight `1.0`.
    pub weight: f64,
    /// Deadline `d_j` (§4 only). `None` for flow-time workloads.
    pub deadline: Option<f64>,
    /// Machine-dependent size `p_ij`, one entry per machine.
    pub sizes: Vec<f64>,
    /// Cached `min_i { p_ij finite }` (∞ when eligible nowhere); see
    /// module docs. Kept private so it cannot drift from `sizes`
    /// except through direct `sizes` mutation, which `validate` catches.
    p_hat: f64,
    /// Cached eligibility bitmask; same consistency contract.
    elig: EligMask,
    /// Cached rack-local `p̂` minima (`None` for fully eligible rows);
    /// same consistency contract.
    rack: Option<RackPHat>,
}

impl Job {
    /// Computes the derived caches from a size row.
    fn derive(sizes: &[f64]) -> (f64, EligMask, Option<RackPHat>) {
        let p_hat = sizes
            .iter()
            .copied()
            .filter(|p| p.is_finite())
            .fold(f64::INFINITY, f64::min);
        (
            p_hat,
            EligMask::from_sizes(sizes),
            RackPHat::from_sizes(sizes),
        )
    }

    /// Constructor with every field explicit (used by
    /// [`crate::InstanceBuilder`]); computes the derived caches.
    pub fn full(
        id: u32,
        release: f64,
        weight: f64,
        deadline: Option<f64>,
        sizes: Vec<f64>,
    ) -> Self {
        let (p_hat, elig, rack) = Self::derive(&sizes);
        Job {
            id: JobId(id),
            release,
            weight,
            deadline,
            sizes,
            p_hat,
            elig,
            rack,
        }
    }

    /// Convenience constructor for an unweighted, deadline-free job.
    pub fn new(id: u32, release: f64, sizes: Vec<f64>) -> Self {
        Self::full(id, release, 1.0, None, sizes)
    }

    /// Constructor with a weight (for §3 workloads).
    pub fn weighted(id: u32, release: f64, weight: f64, sizes: Vec<f64>) -> Self {
        Self::full(id, release, weight, None, sizes)
    }

    /// Constructor with a deadline (for §4 workloads).
    pub fn with_deadline(id: u32, release: f64, deadline: f64, sizes: Vec<f64>) -> Self {
        Self::full(id, release, 1.0, Some(deadline), sizes)
    }

    /// Cheapest eligible size `p̂_j = min_i { p_ij : p_ij < ∞ }`,
    /// precomputed at construction (∞ when the job is eligible
    /// nowhere). The dispatch hot path reads this instead of rescanning
    /// `sizes` at every arrival.
    #[inline]
    pub fn p_hat(&self) -> f64 {
        self.p_hat
    }

    /// The cached machine-eligibility mask.
    #[inline]
    pub fn elig(&self) -> &EligMask {
        &self.elig
    }

    /// The cached rack-local `p̂` minima, or `None` for fully eligible
    /// rows (whose racks all share the global [`Job::p_hat`]).
    #[inline]
    pub fn rack_p_hat(&self) -> Option<&RackPHat> {
        self.rack.as_ref()
    }

    /// Number of machines this job is eligible on.
    pub fn eligible_count(&self) -> usize {
        self.elig.count(self.sizes.len())
    }

    /// Whether the job can run anywhere at all (`p̂ < ∞`). Schedulers
    /// reject jobs failing this at arrival with
    /// [`crate::RejectReason::Ineligible`].
    #[inline]
    pub fn has_eligible(&self) -> bool {
        self.p_hat.is_finite()
    }

    /// Size `p_ij` of this job on machine `i`.
    #[inline]
    pub fn size_on(&self, machine: MachineId) -> f64 {
        self.sizes[machine.idx()]
    }

    /// Whether the job may run on `machine` (finite size).
    #[inline]
    pub fn eligible_on(&self, machine: MachineId) -> bool {
        self.elig.test(machine.idx())
    }

    /// Smallest size over all machines (used by several lower bounds).
    /// Identical to [`Job::p_hat`]: infinite entries never win the min,
    /// so the cached cheapest-eligible size is also the overall min.
    #[inline]
    pub fn min_size(&self) -> f64 {
        self.p_hat
    }

    /// Machine achieving [`Job::min_size`].
    pub fn fastest_machine(&self) -> MachineId {
        let (i, _) = self
            .sizes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("job has at least one machine entry");
        MachineId(i as u32)
    }

    /// Density `δ_ij = w_j / p_ij` on machine `i` (§3 ordering key).
    #[inline]
    pub fn density_on(&self, machine: MachineId) -> f64 {
        self.weight / self.sizes[machine.idx()]
    }

    /// Deadline window length `d_j - r_j`; `None` when no deadline.
    pub fn span(&self) -> Option<f64> {
        self.deadline.map(|d| d - self.release)
    }

    /// Structural validity for `m` machines: finite non-negative release,
    /// positive weight, sizes positive-or-infinite with correct arity,
    /// deadline after release when present.
    ///
    /// A job that is ineligible **everywhere** (all sizes infinite) is
    /// structurally valid — schedulers reject it at arrival with
    /// [`crate::RejectReason::Ineligible`] instead of the instance
    /// being unrepresentable (which used to abort whole runs arriving
    /// at the dispatch argmin with no candidate).
    pub fn validate(&self, machines: usize) -> Result<(), String> {
        if !valid_magnitude(self.release) {
            return Err(format!("{}: invalid release {}", self.id, self.release));
        }
        if !valid_positive(self.weight) {
            return Err(format!("{}: invalid weight {}", self.id, self.weight));
        }
        if self.sizes.len() != machines {
            return Err(format!(
                "{}: has {} sizes, instance has {} machines",
                self.id,
                self.sizes.len(),
                machines
            ));
        }
        for (i, &p) in self.sizes.iter().enumerate() {
            if p.is_nan() || p < 0.0 {
                return Err(format!("{}: invalid size {} on m{}", self.id, p, i));
            }
            if p.is_finite() && p <= 0.0 {
                return Err(format!("{}: non-positive size on m{}", self.id, i));
            }
        }
        if let Some(d) = self.deadline {
            if !d.is_finite() || d <= self.release {
                return Err(format!(
                    "{}: deadline {} not after release {}",
                    self.id, d, self.release
                ));
            }
        }
        // The cached mask must be sized for *this* instance's machine
        // count before any per-bit comparison: a mask built for a
        // different width makes `EligMask::test` panic (too narrow) or
        // answer from padding bits (too wide), so the width gets its
        // own check — and its own error — ahead of the staleness
        // re-derivation below.
        if !self.elig.width_matches(machines) {
            return Err(format!(
                "{}: eligibility mask width does not match m={machines} \
                 (mask built for a different machine count)",
                self.id
            ));
        }
        // The derived caches are pure functions of `sizes`; a mismatch
        // means `sizes` was mutated behind the constructors' back.
        let (p_hat, elig, rack) = Self::derive(&self.sizes);
        if p_hat.to_bits() != self.p_hat.to_bits() || elig != self.elig {
            return Err(format!(
                "{}: stale p̂/eligibility cache (sizes mutated after construction)",
                self.id
            ));
        }
        // The rack-p̂ layer can go stale *alone*: a mutation that keeps
        // the eligibility pattern and the global minimum but moves
        // another finite entry changes only the per-rack minima —
        // bounds built from the stale rack values would over-prune, so
        // reject (comparison is bit-exact, see `RackPHat::eq`).
        if rack != self.rack {
            return Err(format!(
                "{}: stale rack-p̂ cache (sizes mutated after construction)",
                self.id
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_and_index() {
        assert_eq!(JobId(7).to_string(), "j7");
        assert_eq!(MachineId(2).to_string(), "m2");
        assert_eq!(JobId(7).idx(), 7);
        assert_eq!(MachineId(2).idx(), 2);
    }

    #[test]
    fn min_size_and_fastest_machine() {
        let j = Job::new(0, 0.0, vec![5.0, 2.0, 9.0]);
        assert_eq!(j.min_size(), 2.0);
        assert_eq!(j.fastest_machine(), MachineId(1));
    }

    #[test]
    fn restricted_assignment_eligibility() {
        let j = Job::new(0, 0.0, vec![f64::INFINITY, 4.0]);
        assert!(!j.eligible_on(MachineId(0)));
        assert!(j.eligible_on(MachineId(1)));
        assert_eq!(j.min_size(), 4.0);
        assert!(j.validate(2).is_ok());
    }

    #[test]
    fn everywhere_ineligible_job_is_representable() {
        // Schedulers must be able to *see* such a job to reject it with
        // RejectReason::Ineligible (instead of the instance being
        // unconstructible and the dispatch argmin panicking).
        let j = Job::new(0, 0.0, vec![f64::INFINITY]);
        assert!(j.validate(1).is_ok());
        assert!(!j.eligible_on(MachineId(0)));
    }

    #[test]
    fn density_uses_weight() {
        let j = Job::weighted(0, 0.0, 3.0, vec![6.0]);
        assert_eq!(j.density_on(MachineId(0)), 0.5);
    }

    #[test]
    fn validation_rejects_bad_jobs() {
        assert!(Job::new(0, -1.0, vec![1.0]).validate(1).is_err());
        assert!(Job::new(0, 0.0, vec![-1.0]).validate(1).is_err());
        assert!(Job::new(0, 0.0, vec![1.0, 1.0]).validate(1).is_err());
        assert!(Job::weighted(0, 0.0, 0.0, vec![1.0]).validate(1).is_err());
        assert!(Job::with_deadline(0, 5.0, 5.0, vec![1.0])
            .validate(1)
            .is_err());
        assert!(Job::with_deadline(0, 5.0, 6.0, vec![1.0])
            .validate(1)
            .is_ok());
    }

    #[test]
    fn p_hat_cache_matches_scan() {
        let j = Job::new(0, 0.0, vec![5.0, f64::INFINITY, 2.0]);
        assert_eq!(j.p_hat(), 2.0);
        assert_eq!(j.min_size(), 2.0);
        assert!(j.has_eligible());
        assert_eq!(j.eligible_count(), 2);
        let dead = Job::new(1, 0.0, vec![f64::INFINITY, f64::INFINITY]);
        assert_eq!(dead.p_hat(), f64::INFINITY);
        assert!(!dead.has_eligible());
        assert_eq!(dead.eligible_count(), 0);
    }

    #[test]
    fn elig_mask_is_canonical() {
        // Fully eligible rows use the allocation-free representation,
        // so equal sizes ⇒ equal masks regardless of how they were made.
        assert_eq!(EligMask::from_sizes(&[1.0, 2.0]), EligMask::All);
        let m = EligMask::from_sizes(&[1.0, f64::INFINITY, 3.0]);
        assert!(m.test(0) && !m.test(1) && m.test(2));
        assert_eq!(m.count(3), 2);
        assert!(m.any());
        assert!(!EligMask::from_sizes(&[f64::INFINITY]).any());
        // Wide rows cross the 64-bit word boundary.
        let mut sizes = vec![1.0; 130];
        sizes[70] = f64::INFINITY;
        let wide = EligMask::from_sizes(&sizes);
        assert!(wide.test(69) && !wide.test(70) && wide.test(129));
        assert_eq!(wide.count(130), 129);
    }

    #[test]
    fn validate_catches_stale_caches() {
        let mut j = Job::new(0, 0.0, vec![2.0, 3.0]);
        assert!(j.validate(2).is_ok());
        j.sizes[0] = 1.0; // desync: p̂ still 2.0
        let err = j.validate(2).unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }

    #[test]
    fn validate_rejects_mask_width_mismatch() {
        // A restricted mask built for m=2 (one word), then the public
        // `sizes` row swapped for a 130-machine row: `EligMask::test`
        // on machine 128 would panic on the stale one-word mask, so
        // `validate(130)` must fail on the *width*, with a message
        // naming the mask, before any per-bit staleness comparison.
        let mut j = Job::new(0, 0.0, vec![1.0, f64::INFINITY]);
        assert!(matches!(j.elig(), EligMask::Words { .. }));
        let mut wide = vec![1.0; 130];
        wide[70] = f64::INFINITY;
        j.sizes = wide;
        let err = j.validate(130).unwrap_err();
        assert!(err.contains("mask width"), "{err}");
        // The same row rebuilt through a constructor is fine.
        let ok = Job::new(0, 0.0, j.sizes.clone());
        assert!(ok.validate(130).is_ok());
        assert!(ok.elig().width_matches(130));
        // And the width predicate itself: All fits anything, words
        // must match exactly.
        assert!(EligMask::All.width_matches(7));
        let narrow = EligMask::from_sizes(&[1.0, f64::INFINITY]);
        assert!(narrow.width_matches(2) && !narrow.width_matches(130));
    }

    #[test]
    fn word_layers_expose_the_summary() {
        assert!(EligMask::All.word_layers().is_none());
        // 130 machines, word 1 (machines 64..127) fully ineligible:
        // summary bit 1 must be clear, bits 0 and 2 set.
        let mut sizes = vec![1.0; 130];
        for s in sizes.iter_mut().take(128).skip(64) {
            *s = f64::INFINITY;
        }
        let mask = EligMask::from_sizes(&sizes);
        let (words, summary) = mask.word_layers().unwrap();
        assert_eq!(words.len(), 3);
        assert_eq!(summary.len(), 1);
        assert_eq!(words[1], 0);
        assert_eq!(summary[0] & 0b111, 0b101);
    }

    #[test]
    fn rack_p_hat_layers_match_brute_force() {
        // 200 machines: word boundaries at 64/128 plus a ragged tail.
        let mut sizes = vec![f64::INFINITY; 200];
        // Rack (word) 0: minima 3.0; rack 1: 1.5; rack 2: empty; rack 3
        // (ragged, machines 192..200): 7.0.
        sizes[5] = 3.0;
        sizes[63] = 4.0;
        sizes[64] = 1.5;
        sizes[127] = 2.5;
        sizes[199] = 7.0;
        let j = Job::new(0, 0.0, sizes);
        let rack = j.rack_p_hat().expect("restricted row caches rack minima");
        assert_eq!(rack.word_min(), &[3.0, 1.5, f64::INFINITY, 7.0]);
        assert_eq!(rack.block_min(), &[1.5]);
        // Range resolution: word spans, sub-word spans, block spans.
        assert_eq!(rack.range_min(0, 64), 3.0);
        assert_eq!(rack.range_min(64, 64), 1.5);
        assert_eq!(rack.range_min(128, 64), f64::INFINITY);
        assert_eq!(rack.range_min(0, 32), 3.0); // superset word: sound, looser
        assert_eq!(rack.range_min(0, 128), 1.5); // block layer
        assert_eq!(rack.range_min(0, 4096), 1.5);
        assert_eq!(rack.range_min(0, 8192), 1.5); // block scan arm
        assert_eq!(rack.range_min(4096, 4096), f64::INFINITY); // padding
        assert_eq!(j.p_hat(), 1.5);
        assert!(j.validate(200).is_ok());
        // Dense rows keep the allocation-free representation.
        assert!(Job::new(1, 0.0, vec![1.0; 130]).rack_p_hat().is_none());
    }

    #[test]
    fn validate_catches_stale_rack_p_hat_alone() {
        // Machines 0 and 70 eligible (different words): mutating the
        // *non-minimal* entry keeps p̂ (1.0) and the eligibility
        // pattern intact, so the p̂/elig staleness checks pass — only
        // the rack-p̂ comparison can catch the drift, and it must
        // reject (not panic).
        let mut sizes = vec![f64::INFINITY; 130];
        sizes[0] = 1.0;
        sizes[70] = 5.0;
        let mut j = Job::new(0, 0.0, sizes);
        assert!(j.validate(130).is_ok());
        assert_eq!(j.rack_p_hat().unwrap().word_min()[1], 5.0);
        j.sizes[70] = 7.0; // same word, same eligibility, same global p̂
        let err = j.validate(130).unwrap_err();
        assert!(err.contains("rack-p̂"), "{err}");
        // Rebuilt through a constructor the row is fine again.
        let ok = Job::new(0, 0.0, j.sizes.clone());
        assert!(ok.validate(130).is_ok());
        assert_eq!(ok.rack_p_hat().unwrap().word_min()[1], 7.0);
    }

    #[test]
    fn span_is_deadline_window() {
        let j = Job::with_deadline(0, 2.0, 10.0, vec![1.0]);
        assert_eq!(j.span(), Some(8.0));
        assert_eq!(Job::new(0, 2.0, vec![1.0]).span(), None);
    }
}
