//! Jobs and identifiers.

use crate::time::{valid_magnitude, valid_positive};

/// Identifier of a job within an [`crate::Instance`].
///
/// Job ids are dense indices `0..n` into `Instance::jobs`, so they can be
/// used directly as `Vec` indices throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Identifier of a machine within an [`crate::Instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u32);

impl MachineId {
    /// The id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A job in the unrelated-machines model.
///
/// `sizes[i]` is the processing requirement `p_ij` on machine `i`:
///
/// * in the flow-time problem (§2) it is a **processing time** — the job
///   occupies machine `i` for exactly `sizes[i]` time units;
/// * in the speed-scaling problems (§3, §4) it is a **volume** — running
///   at constant speed `s`, the job occupies the machine for
///   `sizes[i] / s` time units.
///
/// A size of `f64::INFINITY` encodes "job cannot run on this machine"
/// (restricted-assignment workloads). A job may be infinite on *every*
/// machine — such a job is representable input (it can arrive over the
/// wire in a trace) and schedulers reject it at arrival with
/// [`crate::RejectReason::Ineligible`] rather than refusing the whole
/// instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Dense id; equals the job's index in its instance.
    pub id: JobId,
    /// Release time `r_j ≥ 0`. The job is unknown to the scheduler before
    /// this instant.
    pub release: f64,
    /// Weight `w_j > 0` (§3). Flow-time workloads use weight `1.0`.
    pub weight: f64,
    /// Deadline `d_j` (§4 only). `None` for flow-time workloads.
    pub deadline: Option<f64>,
    /// Machine-dependent size `p_ij`, one entry per machine.
    pub sizes: Vec<f64>,
}

impl Job {
    /// Convenience constructor for an unweighted, deadline-free job.
    pub fn new(id: u32, release: f64, sizes: Vec<f64>) -> Self {
        Job {
            id: JobId(id),
            release,
            weight: 1.0,
            deadline: None,
            sizes,
        }
    }

    /// Constructor with a weight (for §3 workloads).
    pub fn weighted(id: u32, release: f64, weight: f64, sizes: Vec<f64>) -> Self {
        Job {
            id: JobId(id),
            release,
            weight,
            deadline: None,
            sizes,
        }
    }

    /// Constructor with a deadline (for §4 workloads).
    pub fn with_deadline(id: u32, release: f64, deadline: f64, sizes: Vec<f64>) -> Self {
        Job {
            id: JobId(id),
            release,
            weight: 1.0,
            deadline: Some(deadline),
            sizes,
        }
    }

    /// Size `p_ij` of this job on machine `i`.
    #[inline]
    pub fn size_on(&self, machine: MachineId) -> f64 {
        self.sizes[machine.idx()]
    }

    /// Whether the job may run on `machine` (finite size).
    #[inline]
    pub fn eligible_on(&self, machine: MachineId) -> bool {
        self.sizes[machine.idx()].is_finite()
    }

    /// Smallest size over all machines (used by several lower bounds).
    pub fn min_size(&self) -> f64 {
        self.sizes.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Machine achieving [`Job::min_size`].
    pub fn fastest_machine(&self) -> MachineId {
        let (i, _) = self
            .sizes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("job has at least one machine entry");
        MachineId(i as u32)
    }

    /// Density `δ_ij = w_j / p_ij` on machine `i` (§3 ordering key).
    #[inline]
    pub fn density_on(&self, machine: MachineId) -> f64 {
        self.weight / self.sizes[machine.idx()]
    }

    /// Deadline window length `d_j - r_j`; `None` when no deadline.
    pub fn span(&self) -> Option<f64> {
        self.deadline.map(|d| d - self.release)
    }

    /// Structural validity for `m` machines: finite non-negative release,
    /// positive weight, sizes positive-or-infinite with correct arity,
    /// deadline after release when present.
    ///
    /// A job that is ineligible **everywhere** (all sizes infinite) is
    /// structurally valid — schedulers reject it at arrival with
    /// [`crate::RejectReason::Ineligible`] instead of the instance
    /// being unrepresentable (which used to abort whole runs arriving
    /// at the dispatch argmin with no candidate).
    pub fn validate(&self, machines: usize) -> Result<(), String> {
        if !valid_magnitude(self.release) {
            return Err(format!("{}: invalid release {}", self.id, self.release));
        }
        if !valid_positive(self.weight) {
            return Err(format!("{}: invalid weight {}", self.id, self.weight));
        }
        if self.sizes.len() != machines {
            return Err(format!(
                "{}: has {} sizes, instance has {} machines",
                self.id,
                self.sizes.len(),
                machines
            ));
        }
        for (i, &p) in self.sizes.iter().enumerate() {
            if p.is_nan() || p < 0.0 {
                return Err(format!("{}: invalid size {} on m{}", self.id, p, i));
            }
            if p.is_finite() && p <= 0.0 {
                return Err(format!("{}: non-positive size on m{}", self.id, i));
            }
        }
        if let Some(d) = self.deadline {
            if !d.is_finite() || d <= self.release {
                return Err(format!(
                    "{}: deadline {} not after release {}",
                    self.id, d, self.release
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_and_index() {
        assert_eq!(JobId(7).to_string(), "j7");
        assert_eq!(MachineId(2).to_string(), "m2");
        assert_eq!(JobId(7).idx(), 7);
        assert_eq!(MachineId(2).idx(), 2);
    }

    #[test]
    fn min_size_and_fastest_machine() {
        let j = Job::new(0, 0.0, vec![5.0, 2.0, 9.0]);
        assert_eq!(j.min_size(), 2.0);
        assert_eq!(j.fastest_machine(), MachineId(1));
    }

    #[test]
    fn restricted_assignment_eligibility() {
        let j = Job::new(0, 0.0, vec![f64::INFINITY, 4.0]);
        assert!(!j.eligible_on(MachineId(0)));
        assert!(j.eligible_on(MachineId(1)));
        assert_eq!(j.min_size(), 4.0);
        assert!(j.validate(2).is_ok());
    }

    #[test]
    fn everywhere_ineligible_job_is_representable() {
        // Schedulers must be able to *see* such a job to reject it with
        // RejectReason::Ineligible (instead of the instance being
        // unconstructible and the dispatch argmin panicking).
        let j = Job::new(0, 0.0, vec![f64::INFINITY]);
        assert!(j.validate(1).is_ok());
        assert!(!j.eligible_on(MachineId(0)));
    }

    #[test]
    fn density_uses_weight() {
        let j = Job::weighted(0, 0.0, 3.0, vec![6.0]);
        assert_eq!(j.density_on(MachineId(0)), 0.5);
    }

    #[test]
    fn validation_rejects_bad_jobs() {
        assert!(Job::new(0, -1.0, vec![1.0]).validate(1).is_err());
        assert!(Job::new(0, 0.0, vec![-1.0]).validate(1).is_err());
        assert!(Job::new(0, 0.0, vec![1.0, 1.0]).validate(1).is_err());
        assert!(Job::weighted(0, 0.0, 0.0, vec![1.0]).validate(1).is_err());
        assert!(Job::with_deadline(0, 5.0, 5.0, vec![1.0])
            .validate(1)
            .is_err());
        assert!(Job::with_deadline(0, 5.0, 6.0, vec![1.0])
            .validate(1)
            .is_ok());
    }

    #[test]
    fn span_is_deadline_window() {
        let j = Job::with_deadline(0, 2.0, 10.0, vec![1.0]);
        assert_eq!(j.span(), Some(8.0));
        assert_eq!(Job::new(0, 2.0, vec![1.0]).span(), None);
    }
}
