//! Objective computation: flow-time, weighted flow-time, energy.
//!
//! The paper's objectives (with the conventions it uses for rejected
//! jobs):
//!
//! * §2 — total flow-time `Σ_j F_j` where `F_j = C_j - r_j`; for a
//!   rejected job `F_j` is `rejection time − r_j`.
//! * §3 — total *weighted* flow-time plus energy
//!   `Σ_j w_j F_j + Σ_i ∫ s_i(t)^α dt`; rejected weight is budgeted
//!   separately (at most an `ε` fraction of total weight).
//! * §4 — total energy `Σ_i ∫ P_i(s_i(t)) dt` subject to deadlines.
//!
//! Because the algorithm's cost on *rejected* jobs is part of its flow
//! accounting in the analysis but OPT serves **all** jobs, we expose both
//! views: `flow_served` (completed jobs only) and `flow_all` (rejected
//! jobs contribute until their rejection instant, as in the paper).

use crate::instance::Instance;
use crate::job::JobId;
use crate::log::{FinishedLog, JobFate};

/// Flow-time statistics of a finished schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowMetrics {
    /// `Σ F_j` over completed jobs.
    pub flow_served: f64,
    /// `Σ F_j` over all jobs (rejected counted until rejection — the
    /// paper's `F_j` for `j ∈ R`).
    pub flow_all: f64,
    /// `Σ w_j F_j` over completed jobs.
    pub weighted_flow_served: f64,
    /// `Σ w_j F_j` over all jobs.
    pub weighted_flow_all: f64,
    /// Number of completed jobs.
    pub completed: usize,
    /// Number of rejected jobs.
    pub rejected: usize,
    /// Weight of rejected jobs.
    pub rejected_weight: f64,
    /// Total weight of the instance.
    pub total_weight: f64,
    /// Maximum flow-time over completed jobs (0 if none).
    pub max_flow: f64,
    /// Latest completion time (makespan; 0 if nothing completed).
    pub makespan: f64,
}

impl FlowMetrics {
    /// Fraction of the job *count* that was rejected (Theorem 1 budgets
    /// this at `2ε`).
    pub fn rejected_fraction(&self) -> f64 {
        let n = self.completed + self.rejected;
        if n == 0 {
            0.0
        } else {
            self.rejected as f64 / n as f64
        }
    }

    /// Fraction of total *weight* rejected (Theorem 2 budgets this at
    /// `ε`).
    pub fn rejected_weight_fraction(&self) -> f64 {
        if self.total_weight == 0.0 {
            0.0
        } else {
            self.rejected_weight / self.total_weight
        }
    }

    /// Mean flow-time of completed jobs.
    pub fn mean_flow(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.flow_served / self.completed as f64
        }
    }
}

/// Energy statistics of a finished schedule under `P(s) = s^alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyMetrics {
    /// Energy of completed executions.
    pub energy_completed: f64,
    /// Energy wasted on partial runs of rejected jobs.
    pub energy_partial: f64,
    /// The exponent used.
    pub alpha: f64,
    /// Number of completed jobs that missed their deadline (must be 0
    /// for a valid §4 schedule).
    pub deadline_misses: usize,
}

impl EnergyMetrics {
    /// Total energy including waste.
    pub fn total(&self) -> f64 {
        self.energy_completed + self.energy_partial
    }
}

/// Computes every metric of interest for a finished log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Flow-time view.
    pub flow: FlowMetrics,
    /// Energy view (`alpha` as supplied; meaningless for §2 logs where
    /// all speeds are 1 — energy then equals total busy time).
    pub energy: EnergyMetrics,
}

impl Metrics {
    /// Evaluates `log` against `instance` with power exponent `alpha`.
    ///
    /// Panics if the log length does not match the instance (that is a
    /// programming error, not a data error).
    pub fn compute(instance: &Instance, log: &FinishedLog, alpha: f64) -> Self {
        assert_eq!(instance.len(), log.len(), "log does not cover the instance");
        let mut flow_served = 0.0;
        let mut flow_all = 0.0;
        let mut wflow_served = 0.0;
        let mut wflow_all = 0.0;
        let mut completed = 0usize;
        let mut rejected = 0usize;
        let mut rejected_weight = 0.0;
        let mut max_flow = 0.0f64;
        let mut makespan = 0.0f64;
        let mut energy_completed = 0.0;
        let mut energy_partial = 0.0;
        let mut deadline_misses = 0usize;

        for (id, fate) in log.iter() {
            let job = instance.job(id);
            match fate {
                JobFate::Completed(e) => {
                    let f = e.completion - job.release;
                    flow_served += f;
                    flow_all += f;
                    wflow_served += job.weight * f;
                    wflow_all += job.weight * f;
                    completed += 1;
                    max_flow = max_flow.max(f);
                    makespan = makespan.max(e.completion);
                    energy_completed += e.energy(alpha);
                    if let Some(d) = job.deadline {
                        if e.completion > d + crate::time::EPS {
                            deadline_misses += 1;
                        }
                    }
                }
                JobFate::Rejected(r) => {
                    let f = r.time - job.release;
                    flow_all += f;
                    wflow_all += job.weight * f;
                    rejected += 1;
                    rejected_weight += job.weight;
                    if let Some(p) = r.partial {
                        energy_partial += p.energy(alpha);
                    }
                }
            }
        }

        Metrics {
            flow: FlowMetrics {
                flow_served,
                flow_all,
                weighted_flow_served: wflow_served,
                weighted_flow_all: wflow_all,
                completed,
                rejected,
                rejected_weight,
                total_weight: instance.total_weight(),
                max_flow,
                makespan,
            },
            energy: EnergyMetrics {
                energy_completed,
                energy_partial,
                alpha,
                deadline_misses,
            },
        }
    }

    /// §3 objective: weighted flow of completed jobs plus all energy.
    pub fn weighted_flow_plus_energy(&self) -> f64 {
        self.flow.weighted_flow_served + self.energy.total()
    }

    /// Per-job flow-time, `None` for rejected jobs.
    pub fn job_flow(instance: &Instance, log: &FinishedLog, id: JobId) -> Option<f64> {
        match log.fate(id) {
            JobFate::Completed(e) => Some(e.completion - instance.job(id).release),
            JobFate::Rejected(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceBuilder, InstanceKind};
    use crate::job::MachineId;
    use crate::log::{Execution, PartialRun, RejectReason, Rejection, ScheduleLog};

    fn toy() -> (Instance, FinishedLog) {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![2.0])
            .job(1.0, vec![3.0])
            .job(2.0, vec![10.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 3);
        log.complete(
            JobId(0),
            Execution {
                machine: MachineId(0),
                start: 0.0,
                completion: 2.0,
                speed: 1.0,
            },
        );
        log.complete(
            JobId(1),
            Execution {
                machine: MachineId(0),
                start: 2.0,
                completion: 5.0,
                speed: 1.0,
            },
        );
        log.reject(
            JobId(2),
            Rejection {
                time: 4.0,
                reason: RejectReason::RuleTwo,
                partial: None,
            },
        );
        (inst, log.finish().unwrap())
    }

    #[test]
    fn flow_metrics_basic() {
        let (inst, log) = toy();
        let m = Metrics::compute(&inst, &log, 2.0);
        // j0: F=2, j1: F=4 completed; j2 rejected at 4 → F=2 in flow_all.
        assert_eq!(m.flow.flow_served, 6.0);
        assert_eq!(m.flow.flow_all, 8.0);
        assert_eq!(m.flow.completed, 2);
        assert_eq!(m.flow.rejected, 1);
        assert!((m.flow.rejected_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.flow.max_flow, 4.0);
        assert_eq!(m.flow.makespan, 5.0);
        assert_eq!(m.flow.mean_flow(), 3.0);
    }

    #[test]
    fn energy_counts_partial_runs() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![4.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.reject(
            JobId(0),
            Rejection {
                time: 2.0,
                reason: RejectReason::RuleOne,
                partial: Some(PartialRun {
                    machine: MachineId(0),
                    start: 0.0,
                    end: 2.0,
                    speed: 3.0,
                }),
            },
        );
        let m = Metrics::compute(&inst, &log.finish().unwrap(), 2.0);
        assert_eq!(m.energy.energy_partial, 2.0 * 9.0);
        assert_eq!(m.energy.total(), 18.0);
    }

    #[test]
    fn weighted_flow_uses_weights() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 5.0, vec![2.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.complete(
            JobId(0),
            Execution {
                machine: MachineId(0),
                start: 0.0,
                completion: 2.0,
                speed: 1.0,
            },
        );
        let m = Metrics::compute(&inst, &log.finish().unwrap(), 2.0);
        assert_eq!(m.flow.weighted_flow_served, 10.0);
        assert!((m.weighted_flow_plus_energy() - 12.0).abs() < 1e-12);
        assert_eq!(m.flow.rejected_weight_fraction(), 0.0);
    }

    #[test]
    fn deadline_misses_detected() {
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 3.0, vec![4.0])
            .build()
            .unwrap();
        let mut log = ScheduleLog::new(1, 1);
        log.complete(
            JobId(0),
            Execution {
                machine: MachineId(0),
                start: 0.0,
                completion: 4.0,
                speed: 1.0,
            },
        );
        let m = Metrics::compute(&inst, &log.finish().unwrap(), 2.0);
        assert_eq!(m.energy.deadline_misses, 1);
    }

    #[test]
    fn job_flow_lookup() {
        let (inst, log) = toy();
        assert_eq!(Metrics::job_flow(&inst, &log, JobId(1)), Some(4.0));
        assert_eq!(Metrics::job_flow(&inst, &log, JobId(2)), None);
    }
}
