//! Schedule logs: the complete record of what a scheduler did.
//!
//! Every scheduler in the workspace — the paper's algorithms and all
//! baselines — produces a [`ScheduleLog`]. Metrics (`osr-model::metrics`)
//! and the invariant validator (`osr-sim::validate`) consume logs, so
//! correctness checking is completely decoupled from policy code.

use crate::job::{JobId, MachineId};

/// Why a job was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// §2 Rule 1 / §3 weight rule: the *running* job was interrupted and
    /// discarded because too many jobs (or too much weight) arrived at
    /// its machine during its execution.
    RuleOne,
    /// §2 Rule 2: every `1 + 1/ε` dispatches to a machine, the pending
    /// job with the largest processing time is discarded.
    RuleTwo,
    /// A baseline policy rejected the job immediately upon arrival
    /// (the policies ruled out by Lemma 1).
    Immediate,
    /// The job is eligible on no machine (`p_ij = ∞` everywhere) — no
    /// scheduler can serve it; it is dropped at arrival rather than
    /// aborting the run. Counts against no rule's budget.
    Ineligible,
    /// Every machine the job is eligible on has left the pool (drained
    /// or crashed) by the time the job needed (re-)dispatching. Only
    /// produced by capacity-churn runs; counts against no rule's
    /// budget — the *pool* failed the job, not the policy.
    MachineLost,
    /// Any other baseline-specific reason.
    Other,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::RuleOne => write!(f, "rule-1"),
            RejectReason::RuleTwo => write!(f, "rule-2"),
            RejectReason::Immediate => write!(f, "immediate"),
            RejectReason::Ineligible => write!(f, "ineligible"),
            RejectReason::MachineLost => write!(f, "machine-lost"),
            RejectReason::Other => write!(f, "other"),
        }
    }
}

/// A completed, non-preemptive run of a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Execution {
    /// Machine the job ran on.
    pub machine: MachineId,
    /// Start of continuous execution.
    pub start: f64,
    /// Completion time `C_j` (`start + p / speed`).
    pub completion: f64,
    /// Constant execution speed (1.0 in the flow-time model).
    pub speed: f64,
}

impl Execution {
    /// Wall-clock duration of the run.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.completion - self.start
    }

    /// Volume processed (`duration * speed`).
    #[inline]
    pub fn volume(&self) -> f64 {
        self.duration() * self.speed
    }

    /// Energy consumed under power `P(s) = s^alpha`.
    #[inline]
    pub fn energy(&self, alpha: f64) -> f64 {
        self.duration() * self.speed.powf(alpha)
    }
}

/// The prefix of an execution that ran before a Rule-1-style rejection
/// interrupted it. The machine was busy for `[start, end)` at `speed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialRun {
    /// Machine occupied by the doomed run.
    pub machine: MachineId,
    /// When the job started.
    pub start: f64,
    /// When the rejection interrupted it.
    pub end: f64,
    /// Constant speed during the partial run.
    pub speed: f64,
}

impl PartialRun {
    /// Energy burned by the partial run under `P(s) = s^alpha`.
    #[inline]
    pub fn energy(&self, alpha: f64) -> f64 {
        (self.end - self.start) * self.speed.powf(alpha)
    }
}

/// A rejection event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rejection {
    /// When the scheduler discarded the job. The paper defines the
    /// flow-time of a rejected job as `time - r_j`.
    pub time: f64,
    /// Which rule caused it.
    pub reason: RejectReason,
    /// Machine time consumed before the rejection, if the job had
    /// started (Rule 1 interrupts the running job).
    pub partial: Option<PartialRun>,
}

/// Final fate of a single job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobFate {
    /// Completed with the given execution record.
    Completed(Execution),
    /// Rejected with the given rejection record.
    Rejected(Rejection),
}

impl JobFate {
    /// `true` for completed jobs.
    #[inline]
    pub fn is_completed(&self) -> bool {
        matches!(self, JobFate::Completed(_))
    }

    /// `true` for rejected jobs.
    #[inline]
    pub fn is_rejected(&self) -> bool {
        matches!(self, JobFate::Rejected(_))
    }

    /// The execution record, if completed.
    pub fn execution(&self) -> Option<&Execution> {
        match self {
            JobFate::Completed(e) => Some(e),
            JobFate::Rejected(_) => None,
        }
    }

    /// The rejection record, if rejected.
    pub fn rejection(&self) -> Option<&Rejection> {
        match self {
            JobFate::Completed(_) => None,
            JobFate::Rejected(r) => Some(r),
        }
    }

    /// Time at which the job left the system: completion or rejection.
    pub fn exit_time(&self) -> f64 {
        match self {
            JobFate::Completed(e) => e.completion,
            JobFate::Rejected(r) => r.time,
        }
    }
}

/// Complete record of a scheduler run over an instance.
///
/// `fates[k]` is the fate of `JobId(k)`; the log covers every job exactly
/// once (enforced by [`ScheduleLog::finish`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleLog {
    machines: usize,
    fates: Vec<Option<JobFate>>,
    redispatches: Vec<u32>,
}

impl ScheduleLog {
    /// Creates an empty log for `jobs` jobs on `machines` machines.
    pub fn new(machines: usize, jobs: usize) -> Self {
        ScheduleLog {
            machines,
            fates: vec![None; jobs],
            redispatches: vec![0; jobs],
        }
    }

    /// Extends the log to cover `jobs` jobs, appending undecided slots.
    /// Streaming producers (`osr serve`) learn the instance size as
    /// arrivals come in, so the log grows with the run instead of being
    /// sized up front. Shrinking is a no-op — fates already recorded are
    /// never dropped.
    pub fn grow(&mut self, jobs: usize) {
        if jobs > self.fates.len() {
            self.fates.resize(jobs, None);
            self.redispatches.resize(jobs, 0);
        }
    }

    /// Records that `job` was sent back to the dispatcher after its
    /// machine drained or crashed. Called once per re-dispatch, before
    /// the job's final fate is known; a job may be re-dispatched
    /// several times if the pool keeps churning underneath it.
    pub fn note_redispatch(&mut self, job: JobId) {
        assert!(
            self.fates[job.idx()].is_none(),
            "job {job} already has a fate"
        );
        self.redispatches[job.idx()] += 1;
    }

    /// How many times `job` has been re-dispatched so far.
    #[inline]
    pub fn redispatches(&self, job: JobId) -> u32 {
        self.redispatches[job.idx()]
    }

    /// Number of machines the log refers to.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of jobs the log covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.fates.len()
    }

    /// Whether the log covers no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fates.is_empty()
    }

    /// Records a completed execution. Panics if the job already has a fate
    /// (schedulers must decide each job exactly once).
    pub fn complete(&mut self, job: JobId, exec: Execution) {
        let slot = &mut self.fates[job.idx()];
        assert!(slot.is_none(), "job {job} already has a fate");
        *slot = Some(JobFate::Completed(exec));
    }

    /// Records a rejection. Panics if the job already has a fate.
    pub fn reject(&mut self, job: JobId, rej: Rejection) {
        let slot = &mut self.fates[job.idx()];
        assert!(slot.is_none(), "job {job} already has a fate");
        *slot = Some(JobFate::Rejected(rej));
    }

    /// Fate of a job, if decided.
    pub fn fate(&self, job: JobId) -> Option<&JobFate> {
        self.fates[job.idx()].as_ref()
    }

    /// Iterates `(JobId, &JobFate)` over decided jobs.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &JobFate)> {
        self.fates
            .iter()
            .enumerate()
            .filter_map(|(k, f)| f.as_ref().map(|f| (JobId(k as u32), f)))
    }

    /// All completed executions with their job ids.
    pub fn executions(&self) -> impl Iterator<Item = (JobId, &Execution)> {
        self.iter()
            .filter_map(|(id, f)| f.execution().map(|e| (id, e)))
    }

    /// All rejections with their job ids.
    pub fn rejections(&self) -> impl Iterator<Item = (JobId, &Rejection)> {
        self.iter()
            .filter_map(|(id, f)| f.rejection().map(|r| (id, r)))
    }

    /// Count of rejected jobs.
    pub fn rejected_count(&self) -> usize {
        self.rejections().count()
    }

    /// Finalizes the log, checking every job received a fate.
    pub fn finish(self) -> Result<FinishedLog, String> {
        for (k, f) in self.fates.iter().enumerate() {
            if f.is_none() {
                return Err(format!("job j{k} has no fate"));
            }
        }
        Ok(FinishedLog {
            machines: self.machines,
            fates: self.fates.into_iter().map(Option::unwrap).collect(),
            redispatches: self.redispatches,
        })
    }
}

/// A [`ScheduleLog`] in which every job has a fate.
///
/// Metric computation and validation only accept finished logs, which
/// turns "the scheduler forgot a job" into an error at the source.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishedLog {
    machines: usize,
    fates: Vec<JobFate>,
    redispatches: Vec<u32>,
}

impl FinishedLog {
    /// Number of machines.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Number of jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.fates.len()
    }

    /// Whether the log covers no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fates.is_empty()
    }

    /// Fate of `job`.
    #[inline]
    pub fn fate(&self, job: JobId) -> &JobFate {
        &self.fates[job.idx()]
    }

    /// Iterates `(JobId, &JobFate)`.
    pub fn iter(&self) -> impl Iterator<Item = (JobId, &JobFate)> {
        self.fates
            .iter()
            .enumerate()
            .map(|(k, f)| (JobId(k as u32), f))
    }

    /// All completed executions.
    pub fn executions(&self) -> impl Iterator<Item = (JobId, &Execution)> {
        self.iter()
            .filter_map(|(id, f)| f.execution().map(|e| (id, e)))
    }

    /// All rejections.
    pub fn rejections(&self) -> impl Iterator<Item = (JobId, &Rejection)> {
        self.iter()
            .filter_map(|(id, f)| f.rejection().map(|r| (id, r)))
    }

    /// Count of rejected jobs.
    pub fn rejected_count(&self) -> usize {
        self.rejections().count()
    }

    /// How many times `job` was re-dispatched after losing its machine
    /// to a drain or crash (0 in churn-free runs).
    #[inline]
    pub fn redispatches(&self, job: JobId) -> u32 {
        self.redispatches[job.idx()]
    }

    /// Total re-dispatch events across all jobs.
    pub fn total_redispatches(&self) -> u64 {
        self.redispatches.iter().map(|&r| r as u64).sum()
    }

    /// All intervals `[start, end, speed]` during which each machine was
    /// busy, including partial runs of Rule-1-rejected jobs. Sorted by
    /// machine then start. Used by the validator and the Gantt renderer.
    pub fn busy_intervals(&self) -> Vec<(MachineId, JobId, f64, f64, f64)> {
        let mut out = Vec::new();
        for (id, fate) in self.iter() {
            match fate {
                JobFate::Completed(e) => out.push((e.machine, id, e.start, e.completion, e.speed)),
                JobFate::Rejected(r) => {
                    if let Some(p) = r.partial {
                        out.push((p.machine, id, p.start, p.end, p.speed));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.2.total_cmp(&b.2)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exec(machine: u32, start: f64, completion: f64) -> Execution {
        Execution {
            machine: MachineId(machine),
            start,
            completion,
            speed: 1.0,
        }
    }

    #[test]
    fn execution_derived_quantities() {
        let e = Execution {
            machine: MachineId(0),
            start: 1.0,
            completion: 4.0,
            speed: 2.0,
        };
        assert_eq!(e.duration(), 3.0);
        assert_eq!(e.volume(), 6.0);
        assert_eq!(e.energy(3.0), 3.0 * 8.0);
    }

    #[test]
    fn log_records_fates_and_finishes() {
        let mut log = ScheduleLog::new(1, 2);
        log.complete(JobId(0), exec(0, 0.0, 2.0));
        log.reject(
            JobId(1),
            Rejection {
                time: 1.0,
                reason: RejectReason::RuleTwo,
                partial: None,
            },
        );
        assert_eq!(log.rejected_count(), 1);
        let fin = log.finish().unwrap();
        assert_eq!(fin.len(), 2);
        assert!(fin.fate(JobId(0)).is_completed());
        assert!(fin.fate(JobId(1)).is_rejected());
        assert_eq!(fin.fate(JobId(1)).exit_time(), 1.0);
    }

    #[test]
    fn grow_appends_undecided_slots() {
        let mut log = ScheduleLog::new(1, 1);
        log.complete(JobId(0), exec(0, 0.0, 1.0));
        log.grow(3);
        assert_eq!(log.len(), 3);
        assert!(log.fate(JobId(0)).is_some());
        assert!(log.fate(JobId(1)).is_none());
        log.grow(2); // shrinking is a no-op
        assert_eq!(log.len(), 3);
        log.complete(JobId(1), exec(0, 1.0, 2.0));
        log.complete(JobId(2), exec(0, 2.0, 3.0));
        assert!(log.finish().is_ok());
    }

    #[test]
    fn finish_detects_missing_fate() {
        let log = ScheduleLog::new(1, 1);
        assert!(log.finish().is_err());
    }

    #[test]
    #[should_panic(expected = "already has a fate")]
    fn double_fate_panics() {
        let mut log = ScheduleLog::new(1, 1);
        log.complete(JobId(0), exec(0, 0.0, 1.0));
        log.complete(JobId(0), exec(0, 2.0, 3.0));
    }

    #[test]
    fn busy_intervals_include_partial_runs() {
        let mut log = ScheduleLog::new(2, 2);
        log.complete(JobId(0), exec(1, 0.0, 2.0));
        log.reject(
            JobId(1),
            Rejection {
                time: 5.0,
                reason: RejectReason::RuleOne,
                partial: Some(PartialRun {
                    machine: MachineId(0),
                    start: 3.0,
                    end: 5.0,
                    speed: 1.0,
                }),
            },
        );
        let fin = log.finish().unwrap();
        let busy = fin.busy_intervals();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0].0, MachineId(0));
        assert_eq!(busy[0].2, 3.0);
        assert_eq!(busy[1].0, MachineId(1));
    }

    #[test]
    fn busy_intervals_sorted_within_machine() {
        let mut log = ScheduleLog::new(1, 3);
        log.complete(JobId(0), exec(0, 4.0, 5.0));
        log.complete(JobId(1), exec(0, 0.0, 2.0));
        log.complete(JobId(2), exec(0, 2.0, 4.0));
        let fin = log.finish().unwrap();
        let busy = fin.busy_intervals();
        let starts: Vec<f64> = busy.iter().map(|b| b.2).collect();
        assert_eq!(starts, vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn reject_reason_display() {
        assert_eq!(RejectReason::RuleOne.to_string(), "rule-1");
        assert_eq!(RejectReason::RuleTwo.to_string(), "rule-2");
        assert_eq!(RejectReason::Immediate.to_string(), "immediate");
        assert_eq!(RejectReason::MachineLost.to_string(), "machine-lost");
    }

    #[test]
    fn redispatch_counts_survive_finish() {
        let mut log = ScheduleLog::new(2, 2);
        log.note_redispatch(JobId(1));
        log.note_redispatch(JobId(1));
        assert_eq!(log.redispatches(JobId(1)), 2);
        log.complete(JobId(0), exec(0, 0.0, 1.0));
        log.reject(
            JobId(1),
            Rejection {
                time: 3.0,
                reason: RejectReason::MachineLost,
                partial: None,
            },
        );
        let fin = log.finish().unwrap();
        assert_eq!(fin.redispatches(JobId(0)), 0);
        assert_eq!(fin.redispatches(JobId(1)), 2);
        assert_eq!(fin.total_redispatches(), 2);
    }

    #[test]
    #[should_panic(expected = "already has a fate")]
    fn redispatch_after_fate_panics() {
        let mut log = ScheduleLog::new(1, 1);
        log.complete(JobId(0), exec(0, 0.0, 1.0));
        log.note_redispatch(JobId(0));
    }
}
