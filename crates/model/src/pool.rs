//! The elastic machine pool's membership mask.
//!
//! Capacity churn (machines joining, draining, crashing mid-run —
//! `osr_sim::capacity`) needs a scheduler-side record of **which
//! machines are online right now** in the same two-layer word/summary
//! shape as [`crate::EligMask`], so a job's eligibility mask
//! can be intersected with pool membership in `O(words)` and handed
//! straight to the mask-guided tournament search. [`OnlineSet`] is that
//! record, and it resizes **incrementally**:
//!
//! * **grow-by-rack** — joining a machine beyond the current width
//!   extends the word array by whole 64-machine words (racks), never
//!   reallocating per machine;
//! * **tombstone** — drain/crash clears the machine's bit in place
//!   (`O(1)` plus a summary-bit update); the words are never compacted,
//!   because machine ids are indices into every job's `sizes` row and
//!   cannot be renumbered mid-run.
//!
//! The companion scratch buffer ([`MaskScratch`]) holds the
//! intersection `elig ∩ online` without allocating per dispatch.

use crate::job::EligMask;

/// Which machines of an elastic pool are currently online.
///
/// Bit layout matches [`EligMask::word_layers`]: one bit per machine,
/// LSB-first within 64-bit words, plus a summary layer with one bit per
/// word (set iff that word is non-zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineSet {
    words: Vec<u64>,
    summary: Vec<u64>,
    /// Machine-universe width covered by `words` (may be mid-rack).
    m: usize,
    /// Number of online machines.
    online: usize,
}

impl OnlineSet {
    /// A pool of `m` machines, all online.
    pub fn all_online(m: usize) -> Self {
        let mut s = OnlineSet {
            words: Vec::new(),
            summary: Vec::new(),
            m: 0,
            online: 0,
        };
        s.grow_to(m);
        for i in 0..m {
            s.set_online(i);
        }
        s
    }

    /// A pool of `m` machines, all offline (they join explicitly).
    pub fn all_offline(m: usize) -> Self {
        let mut s = OnlineSet {
            words: Vec::new(),
            summary: Vec::new(),
            m: 0,
            online: 0,
        };
        s.grow_to(m);
        s
    }

    /// Machine-universe width currently covered.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of online machines.
    #[inline]
    pub fn online_count(&self) -> usize {
        self.online
    }

    /// Whether every machine in `0..m` is online.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.online == self.m
    }

    /// Whether machine `i` is online (`false` beyond the width).
    #[inline]
    pub fn is_online(&self, i: usize) -> bool {
        i < self.m && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Extends the covered universe to `new_m` machines (no-op if the
    /// pool is already that wide). Storage grows by whole 64-machine
    /// words; the new machines start **offline**.
    pub fn grow_to(&mut self, new_m: usize) {
        if new_m <= self.m {
            return;
        }
        let need_words = new_m.div_ceil(64);
        if need_words > self.words.len() {
            self.words.resize(need_words, 0);
            self.summary.resize(need_words.div_ceil(64), 0);
        }
        self.m = new_m;
    }

    /// Marks machine `i` online, growing the pool if `i` is beyond the
    /// current width. Returns `true` if the machine was offline.
    pub fn set_online(&mut self, i: usize) -> bool {
        self.grow_to(self.m.max(i + 1));
        let (w, b) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & b != 0 {
            return false;
        }
        self.words[w] |= b;
        self.summary[w / 64] |= 1u64 << (w % 64);
        self.online += 1;
        true
    }

    /// Marks machine `i` offline (tombstone). Returns `true` if the
    /// machine was online.
    pub fn set_offline(&mut self, i: usize) -> bool {
        if !self.is_online(i) {
            return false;
        }
        let w = i / 64;
        self.words[w] &= !(1u64 << (i % 64));
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
        self.online -= 1;
        true
    }

    /// The `(words, summary)` layers, in [`EligMask::word_layers`]
    /// layout.
    #[inline]
    pub fn word_layers(&self) -> (&[u64], &[u64]) {
        (&self.words, &self.summary)
    }

    /// Intersects a job's eligibility mask with pool membership into
    /// `scratch`, returning `true` iff any machine is both eligible and
    /// online. After a `true` return, `scratch.word_layers()` holds the
    /// intersection in [`EligMask::word_layers`] layout.
    ///
    /// For unrestricted jobs (`EligMask::All`) the intersection *is*
    /// the online set; callers should prefer borrowing
    /// [`OnlineSet::word_layers`] directly in that case (this method
    /// still fills `scratch` correctly, at the cost of a copy).
    pub fn intersect_elig(&self, elig: &EligMask, scratch: &mut MaskScratch) -> bool {
        scratch.words.clear();
        scratch.summary.clear();
        scratch.summary.resize(self.summary.len(), 0);
        match elig.word_layers() {
            None => {
                scratch.words.extend_from_slice(&self.words);
                scratch.summary.copy_from_slice(&self.summary);
                self.online > 0
            }
            Some((jw, _)) => {
                scratch.words.resize(self.words.len(), 0);
                osr_dstruct::kernel::intersect_words4(
                    osr_dstruct::default_kernel_mode(),
                    jw,
                    &self.words,
                    &mut scratch.words,
                    &mut scratch.summary,
                )
            }
        }
    }
}

/// Reusable buffer for `elig ∩ online` intersections (one per
/// scheduler, reused across every dispatch — no per-arrival
/// allocation once the high-water mark is reached).
#[derive(Debug, Clone, Default)]
pub struct MaskScratch {
    words: Vec<u64>,
    summary: Vec<u64>,
}

impl MaskScratch {
    /// Empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `(words, summary)` layers of the last intersection.
    #[inline]
    pub fn word_layers(&self) -> (&[u64], &[u64]) {
        (&self.words, &self.summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_online_then_churn() {
        let mut s = OnlineSet::all_online(5);
        assert!(s.is_full());
        assert_eq!(s.online_count(), 5);
        assert!(s.set_offline(3));
        assert!(!s.set_offline(3), "double-drain is a no-op");
        assert!(!s.is_online(3));
        assert_eq!(s.online_count(), 4);
        assert!(s.set_online(3));
        assert!(s.is_full());
    }

    #[test]
    fn grow_by_rack_keeps_layers_consistent() {
        let mut s = OnlineSet::all_online(63);
        assert_eq!(s.word_layers().0.len(), 1);
        // Joining machine 64 grows by a whole word.
        assert!(s.set_online(64));
        assert_eq!(s.m(), 65);
        assert_eq!(s.word_layers().0.len(), 2);
        assert!(s.is_online(64));
        assert!(
            !s.is_online(63),
            "machines revealed by growth start offline"
        );
        assert_eq!(s.word_layers().1[0] & 0b11, 0b11);
        // Draining the only machine of word 1 clears its summary bit.
        assert!(s.set_offline(64));
        assert_eq!(s.word_layers().1[0] & 0b10, 0);
    }

    #[test]
    fn intersection_with_restricted_mask() {
        let mut sizes = vec![f64::INFINITY; 130];
        sizes[3] = 1.0;
        sizes[70] = 2.0;
        sizes[129] = 3.0;
        let elig = EligMask::from_sizes(&sizes);
        let mut s = OnlineSet::all_online(130);
        let mut scratch = MaskScratch::new();
        assert!(s.intersect_elig(&elig, &mut scratch));
        let (w, sum) = scratch.word_layers();
        assert_eq!(w[0], 1 << 3);
        assert_eq!(w[1], 1 << 6);
        assert_eq!(w[2], 1 << 1);
        assert_eq!(sum[0] & 0b111, 0b111);
        // Knock out two of the three eligible machines.
        s.set_offline(3);
        s.set_offline(129);
        assert!(s.intersect_elig(&elig, &mut scratch));
        let (w, sum) = scratch.word_layers();
        assert_eq!(w[0], 0);
        assert_eq!(w[2], 0);
        assert_eq!(sum[0] & 0b111, 0b010);
        // Lose the last one: no eligible online machine remains.
        s.set_offline(70);
        assert!(!s.intersect_elig(&elig, &mut scratch));
    }

    #[test]
    fn intersection_with_unrestricted_mask_copies_the_pool() {
        let mut s = OnlineSet::all_online(70);
        s.set_offline(1);
        let mut scratch = MaskScratch::new();
        assert!(s.intersect_elig(&EligMask::All, &mut scratch));
        assert_eq!(scratch.word_layers().0, s.word_layers().0);
        assert_eq!(scratch.word_layers().1, s.word_layers().1);
        let empty = OnlineSet::all_offline(70);
        assert!(!empty.intersect_elig(&EligMask::All, &mut scratch));
    }
}
