//! Plain-text instance and result (de)serialization.
//!
//! Two hand-rolled formats (no serde_json available offline; the formats
//! are line-oriented and trivially diffable, which suits experiment
//! artifacts better anyway):
//!
//! * **Instance CSV** — header line `# osr-instance v1 kind=<kind> m=<m>`,
//!   then one line per job:
//!   `release,weight,deadline(or -),p_0,p_1,…,p_{m-1}` with `inf`
//!   allowed for restricted assignment.
//! * **Result CSV** — emitted by experiments; a header row followed by
//!   value rows, written via [`CsvWriter`].

use std::io::{BufRead, Write};

use crate::error::ModelError;
use crate::instance::{Instance, InstanceBuilder, InstanceKind};

/// Serializes an instance into the textual format described at module
/// level.
pub fn write_instance<W: Write>(w: &mut W, inst: &Instance) -> Result<(), ModelError> {
    let kind = match inst.kind() {
        InstanceKind::FlowTime => "flowtime",
        InstanceKind::FlowEnergy => "flowenergy",
        InstanceKind::Energy => "energy",
    };
    writeln!(w, "# osr-instance v1 kind={kind} m={}", inst.machines())?;
    for j in inst.jobs() {
        let deadline = match j.deadline {
            Some(d) => fmt_f64(d),
            None => "-".to_string(),
        };
        let sizes: Vec<String> = j.sizes.iter().map(|&p| fmt_f64(p)).collect();
        writeln!(
            w,
            "{},{},{},{}",
            fmt_f64(j.release),
            fmt_f64(j.weight),
            deadline,
            sizes.join(",")
        )?;
    }
    Ok(())
}

/// Serializes an instance to a `String`.
pub fn instance_to_string(inst: &Instance) -> String {
    let mut buf = Vec::new();
    write_instance(&mut buf, inst).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Parses an instance previously written by [`write_instance`].
pub fn read_instance<R: BufRead>(r: R) -> Result<Instance, ModelError> {
    let mut lines = r.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ModelError::Parse {
        line: 1,
        message: "empty input".into(),
    })?;
    let header = header?;
    let (kind, machines) = parse_header(&header)?;
    let mut builder = InstanceBuilder::new(machines, kind);
    for (lineno, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 + machines {
            return Err(ModelError::Parse {
                line: lineno + 1,
                message: format!("expected {} fields, got {}", 3 + machines, fields.len()),
            });
        }
        let release = parse_f64(fields[0], lineno + 1)?;
        let weight = parse_f64(fields[1], lineno + 1)?;
        let deadline = if fields[2] == "-" {
            None
        } else {
            Some(parse_f64(fields[2], lineno + 1)?)
        };
        let mut sizes = Vec::with_capacity(machines);
        for f in &fields[3..] {
            sizes.push(parse_f64(f, lineno + 1)?);
        }
        builder = builder.full_job(release, weight, deadline, sizes);
    }
    builder.build()
}

/// Parses an instance from a string.
pub fn instance_from_str(s: &str) -> Result<Instance, ModelError> {
    read_instance(s.as_bytes())
}

fn parse_header(header: &str) -> Result<(InstanceKind, usize), ModelError> {
    let err = |m: &str| ModelError::Parse {
        line: 1,
        message: m.to_string(),
    };
    if !header.starts_with("# osr-instance v1") {
        return Err(err("missing `# osr-instance v1` header"));
    }
    let mut kind = None;
    let mut machines = None;
    for token in header.split_whitespace() {
        if let Some(v) = token.strip_prefix("kind=") {
            kind = Some(match v {
                "flowtime" => InstanceKind::FlowTime,
                "flowenergy" => InstanceKind::FlowEnergy,
                "energy" => InstanceKind::Energy,
                other => return Err(err(&format!("unknown kind `{other}`"))),
            });
        }
        if let Some(v) = token.strip_prefix("m=") {
            machines = Some(
                v.parse::<usize>()
                    .map_err(|_| err(&format!("bad machine count `{v}`")))?,
            );
        }
    }
    match (kind, machines) {
        (Some(k), Some(m)) => Ok((k, m)),
        _ => Err(err("header must contain kind= and m=")),
    }
}

fn parse_f64(s: &str, line: usize) -> Result<f64, ModelError> {
    match s {
        "inf" | "+inf" => Ok(f64::INFINITY),
        _ => s.parse::<f64>().map_err(|_| ModelError::Parse {
            line,
            message: format!("bad number `{s}`"),
        }),
    }
}

/// Formats a float compactly and round-trippably (`inf` for infinity).
pub fn fmt_f64(x: f64) -> String {
    if x == f64::INFINITY {
        "inf".to_string()
    } else if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        // 17 significant digits round-trips f64 exactly.
        let s = format!("{x:.17e}");
        // Prefer the shorter plain representation when it round-trips.
        let plain = format!("{x}");
        if plain.parse::<f64>() == Ok(x) {
            plain
        } else {
            s
        }
    }
}

/// Serializes a finished schedule log.
///
/// Format: header `# osr-log v1 m=<m> n=<n>`, then one line per job:
///
/// ```text
/// id,kind,machine,start,end,speed,reason,p_machine,p_start,p_end,p_speed,redisp
/// ```
///
/// `kind` is `c` (completed: machine/start/end/speed filled) or `r`
/// (rejected: `end` holds the rejection time, `reason` one of
/// `rule-1|rule-2|immediate|ineligible|machine-lost|other`, `p_*` the
/// partial run or `-`). `redisp` is the job's re-dispatch count from
/// capacity-churn runs; the reader also accepts the 11-field rows of
/// pre-churn logs (implicitly `redisp = 0`).
pub fn write_log<W: Write>(w: &mut W, log: &crate::log::FinishedLog) -> Result<(), ModelError> {
    use crate::log::JobFate;
    writeln!(w, "# osr-log v1 m={} n={}", log.machines(), log.len())?;
    for (id, fate) in log.iter() {
        let redisp = log.redispatches(id);
        match fate {
            JobFate::Completed(e) => writeln!(
                w,
                "{},c,{},{},{},{},-,-,-,-,-,{redisp}",
                id.0,
                e.machine.0,
                fmt_f64(e.start),
                fmt_f64(e.completion),
                fmt_f64(e.speed)
            )?,
            JobFate::Rejected(r) => {
                let (pm, ps, pe, pv) = match r.partial {
                    Some(p) => (
                        p.machine.0.to_string(),
                        fmt_f64(p.start),
                        fmt_f64(p.end),
                        fmt_f64(p.speed),
                    ),
                    None => ("-".into(), "-".into(), "-".into(), "-".into()),
                };
                writeln!(
                    w,
                    "{},r,-,-,{},-,{},{pm},{ps},{pe},{pv},{redisp}",
                    id.0,
                    fmt_f64(r.time),
                    r.reason
                )?;
            }
        }
    }
    Ok(())
}

/// Serializes a log to a `String`.
pub fn log_to_string(log: &crate::log::FinishedLog) -> String {
    let mut buf = Vec::new();
    write_log(&mut buf, log).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Parses a log previously written by [`write_log`].
pub fn read_log<R: BufRead>(r: R) -> Result<crate::log::FinishedLog, ModelError> {
    use crate::log::{PartialRun, RejectReason, Rejection, ScheduleLog};
    use crate::{Execution, JobId, MachineId};

    let mut lines = r.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ModelError::Parse {
        line: 1,
        message: "empty input".into(),
    })?;
    let header = header?;
    let err1 = |m: &str| ModelError::Parse {
        line: 1,
        message: m.to_string(),
    };
    if !header.starts_with("# osr-log v1") {
        return Err(err1("missing `# osr-log v1` header"));
    }
    let mut machines = None;
    let mut n = None;
    for token in header.split_whitespace() {
        if let Some(v) = token.strip_prefix("m=") {
            machines = v.parse::<usize>().ok();
        }
        if let Some(v) = token.strip_prefix("n=") {
            n = v.parse::<usize>().ok();
        }
    }
    let (machines, n) = match (machines, n) {
        (Some(m), Some(n)) => (m, n),
        _ => return Err(err1("header must contain m= and n=")),
    };

    let mut log = ScheduleLog::new(machines, n);
    for (lineno, line) in lines {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = lineno + 1;
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 11 && f.len() != 12 {
            return Err(ModelError::Parse {
                line: lineno,
                message: format!("expected 11 or 12 fields, got {}", f.len()),
            });
        }
        let id: u32 = f[0].parse().map_err(|_| ModelError::Parse {
            line: lineno,
            message: format!("bad job id `{}`", f[0]),
        })?;
        if f.len() == 12 {
            let redisp: u32 = f[11].parse().map_err(|_| ModelError::Parse {
                line: lineno,
                message: format!("bad redispatch count `{}`", f[11]),
            })?;
            for _ in 0..redisp {
                log.note_redispatch(JobId(id));
            }
        }
        match f[1] {
            "c" => {
                let machine: u32 = f[2].parse().map_err(|_| ModelError::Parse {
                    line: lineno,
                    message: format!("bad machine `{}`", f[2]),
                })?;
                log.complete(
                    JobId(id),
                    Execution {
                        machine: MachineId(machine),
                        start: parse_f64(f[3], lineno)?,
                        completion: parse_f64(f[4], lineno)?,
                        speed: parse_f64(f[5], lineno)?,
                    },
                );
            }
            "r" => {
                let reason = match f[6] {
                    "rule-1" => RejectReason::RuleOne,
                    "rule-2" => RejectReason::RuleTwo,
                    "immediate" => RejectReason::Immediate,
                    "ineligible" => RejectReason::Ineligible,
                    "machine-lost" => RejectReason::MachineLost,
                    "other" => RejectReason::Other,
                    other => {
                        return Err(ModelError::Parse {
                            line: lineno,
                            message: format!("unknown reject reason `{other}`"),
                        })
                    }
                };
                let partial = if f[7] == "-" {
                    None
                } else {
                    let machine: u32 = f[7].parse().map_err(|_| ModelError::Parse {
                        line: lineno,
                        message: format!("bad partial machine `{}`", f[7]),
                    })?;
                    Some(PartialRun {
                        machine: MachineId(machine),
                        start: parse_f64(f[8], lineno)?,
                        end: parse_f64(f[9], lineno)?,
                        speed: parse_f64(f[10], lineno)?,
                    })
                };
                log.reject(
                    JobId(id),
                    Rejection {
                        time: parse_f64(f[4], lineno)?,
                        reason,
                        partial,
                    },
                );
            }
            other => {
                return Err(ModelError::Parse {
                    line: lineno,
                    message: format!("unknown fate kind `{other}`"),
                })
            }
        }
    }
    log.finish().map_err(ModelError::Invalid)
}

/// Parses a log from a string.
pub fn log_from_str(s: &str) -> Result<crate::log::FinishedLog, ModelError> {
    read_log(s.as_bytes())
}

/// Minimal CSV writer used by the experiment harness for result tables.
///
/// Keeps column arity consistent across rows and escapes nothing — all
/// experiment fields are numbers or simple identifiers by construction.
#[derive(Debug)]
pub struct CsvWriter<W: Write> {
    sink: W,
    columns: usize,
}

impl<W: Write> CsvWriter<W> {
    /// Writes the header row and fixes the column count.
    pub fn new(mut sink: W, header: &[&str]) -> Result<Self, ModelError> {
        writeln!(sink, "{}", header.join(","))?;
        Ok(CsvWriter {
            sink,
            columns: header.len(),
        })
    }

    /// Writes one data row; panics on arity mismatch (programming error).
    pub fn row(&mut self, fields: &[String]) -> Result<(), ModelError> {
        assert_eq!(fields.len(), self.columns, "csv row arity mismatch");
        writeln!(self.sink, "{}", fields.join(","))?;
        Ok(())
    }

    /// Consumes the writer, returning the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{InstanceBuilder, InstanceKind};

    fn sample() -> Instance {
        InstanceBuilder::new(2, InstanceKind::FlowEnergy)
            .weighted_job(0.0, 2.5, vec![1.5, f64::INFINITY])
            .weighted_job(1.0, 1.0, vec![3.0, 0.125])
            .build()
            .unwrap()
    }

    #[test]
    fn instance_round_trips() {
        let inst = sample();
        let text = instance_to_string(&inst);
        let back = instance_from_str(&text).unwrap();
        assert_eq!(inst, back);
    }

    #[test]
    fn deadline_round_trips() {
        let inst = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.5, 9.25, vec![2.0])
            .build()
            .unwrap();
        let back = instance_from_str(&instance_to_string(&inst)).unwrap();
        assert_eq!(inst, back);
        assert_eq!(back.jobs()[0].deadline, Some(9.25));
    }

    #[test]
    fn irrational_sizes_round_trip() {
        let p = std::f64::consts::PI;
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(p / 7.0, vec![p])
            .build()
            .unwrap();
        let back = instance_from_str(&instance_to_string(&inst)).unwrap();
        assert_eq!(back.jobs()[0].sizes[0], p);
        assert_eq!(back.jobs()[0].release, p / 7.0);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# osr-instance v1 kind=flowtime m=1\n\n# comment\n0,1,-,2\n";
        let inst = instance_from_str(text).unwrap();
        assert_eq!(inst.len(), 1);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(instance_from_str("nonsense\n").is_err());
        assert!(instance_from_str("# osr-instance v1 kind=flowtime\n").is_err());
        assert!(instance_from_str("# osr-instance v1 kind=bogus m=1\n").is_err());
    }

    #[test]
    fn field_arity_checked() {
        let text = "# osr-instance v1 kind=flowtime m=2\n0,1,-,2\n";
        let err = instance_from_str(text).unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }));
    }

    #[test]
    fn bad_number_reported_with_line() {
        let text = "# osr-instance v1 kind=flowtime m=1\n0,1,-,abc\n";
        match instance_from_str(text).unwrap_err() {
            ModelError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn log_round_trips() {
        use crate::log::{PartialRun, RejectReason, Rejection, ScheduleLog};
        use crate::{Execution, JobId, MachineId};
        let mut log = ScheduleLog::new(2, 3);
        log.complete(
            JobId(0),
            Execution {
                machine: MachineId(1),
                start: 0.5,
                completion: 2.75,
                speed: 1.5,
            },
        );
        log.reject(
            JobId(1),
            Rejection {
                time: 3.25,
                reason: RejectReason::RuleOne,
                partial: Some(PartialRun {
                    machine: MachineId(0),
                    start: 1.0,
                    end: 3.25,
                    speed: 2.0,
                }),
            },
        );
        log.reject(
            JobId(2),
            Rejection {
                time: 4.0,
                reason: RejectReason::RuleTwo,
                partial: None,
            },
        );
        let fin = log.finish().unwrap();
        let text = log_to_string(&fin);
        let back = log_from_str(&text).unwrap();
        assert_eq!(fin, back);
    }

    #[test]
    fn churn_log_round_trips_machine_lost_and_redispatch_counts() {
        use crate::log::{PartialRun, RejectReason, Rejection, ScheduleLog};
        use crate::{Execution, JobId, MachineId};
        let mut log = ScheduleLog::new(3, 3);
        // Job 0: crashed once, re-dispatched, completed elsewhere.
        log.note_redispatch(JobId(0));
        log.complete(
            JobId(0),
            Execution {
                machine: MachineId(2),
                start: 4.0,
                completion: 6.5,
                speed: 1.0,
            },
        );
        // Job 1: crashed twice, then every eligible machine was gone —
        // machine-lost with the last partial run attached.
        log.note_redispatch(JobId(1));
        log.note_redispatch(JobId(1));
        log.reject(
            JobId(1),
            Rejection {
                time: 7.25,
                reason: RejectReason::MachineLost,
                partial: Some(PartialRun {
                    machine: MachineId(1),
                    start: 5.0,
                    end: 7.25,
                    speed: 1.0,
                }),
            },
        );
        // Job 2: untouched by churn.
        log.reject(
            JobId(2),
            Rejection {
                time: 8.0,
                reason: RejectReason::MachineLost,
                partial: None,
            },
        );
        let fin = log.finish().unwrap();
        let text = log_to_string(&fin);
        let back = log_from_str(&text).unwrap();
        assert_eq!(fin, back, "exact round trip incl. redispatch counts");
        assert_eq!(back.redispatches(JobId(0)), 1);
        assert_eq!(back.redispatches(JobId(1)), 2);
        assert_eq!(back.redispatches(JobId(2)), 0);
        assert_eq!(
            back.fate(JobId(1)).rejection().unwrap().reason,
            RejectReason::MachineLost
        );
    }

    #[test]
    fn legacy_eleven_field_rows_still_parse() {
        // Pre-churn writers emitted 11 fields; redisp defaults to 0.
        let text = "# osr-log v1 m=1 n=1\n0,c,0,0,1,1,-,-,-,-,-\n";
        let log = log_from_str(text).unwrap();
        assert_eq!(log.redispatches(crate::JobId(0)), 0);
    }

    #[test]
    fn log_parse_errors_reported() {
        assert!(log_from_str("garbage\n").is_err());
        assert!(log_from_str("# osr-log v1 m=1\n").is_err());
        let bad_kind = "# osr-log v1 m=1 n=1\n0,x,-,-,1,-,-,-,-,-,-\n";
        assert!(log_from_str(bad_kind).is_err());
        let missing_job = "# osr-log v1 m=1 n=2\n0,c,0,0,1,1,-,-,-,-,-\n";
        assert!(log_from_str(missing_job).is_err());
    }

    #[test]
    fn csv_writer_emits_rows() {
        let mut w = CsvWriter::new(Vec::new(), &["a", "b"]).unwrap();
        w.row(&["1".into(), "2".into()]).unwrap();
        let out = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(out, "a,b\n1,2\n");
    }

    #[test]
    fn fmt_f64_cases() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        assert_eq!(fmt_f64(0.5), "0.5");
    }
}
