//! Floating-point time helpers.
//!
//! The paper works in continuous time for §2–§3 and discrete time for §4.
//! We represent continuous time as `f64` and provide tolerant comparison
//! helpers so that event-driven simulations remain robust against the
//! usual accumulation of rounding error (e.g. a completion computed as
//! `start + p` compared against an arrival at the "same" instant).
//!
//! All comparisons in the workspace that decide *simulation semantics*
//! (does this event happen before that one? is this deadline met?) go
//! through these helpers, so the tolerance policy is centralised here.

/// Absolute tolerance used by the approximate comparators.
///
/// Workloads in this workspace keep processing times in roughly
/// `[1e-6, 1e9]`, for which a fixed absolute epsilon combined with a
/// relative term is adequate.
pub const EPS: f64 = 1e-9;

/// `a == b` up to [`EPS`] absolute or `EPS`-relative error.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= EPS {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= scale * EPS
}

/// `a <= b` up to tolerance.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b || approx_eq(a, b)
}

/// `a >= b` up to tolerance.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b || approx_eq(a, b)
}

/// Total ordering on `f64` suitable for sorting and heap keys.
///
/// Delegates to [`f64::total_cmp`]; exposed as a free function so call
/// sites read uniformly (`sort_by(total_cmp_f64)`).
#[inline]
pub fn total_cmp_f64(a: &f64, b: &f64) -> std::cmp::Ordering {
    a.total_cmp(b)
}

/// Returns `true` when `x` is a finite, non-negative quantity — the
/// validity requirement for all times, sizes and weights in the model.
#[inline]
pub fn valid_magnitude(x: f64) -> bool {
    x.is_finite() && x >= 0.0
}

/// Returns `true` when `x` is finite and strictly positive.
#[inline]
pub fn valid_positive(x: f64) -> bool {
    x.is_finite() && x > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(approx_eq(0.0, 1e-10));
        assert!(!approx_eq(0.0, 1e-6));
    }

    #[test]
    fn approx_eq_relative_large_magnitudes() {
        let a = 1e12;
        assert!(approx_eq(a, a * (1.0 + 1e-12)));
        assert!(!approx_eq(a, a * (1.0 + 1e-6)));
    }

    #[test]
    fn approx_le_ge_are_tolerant_at_the_boundary() {
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(approx_ge(1.0 - 1e-12, 1.0));
        assert!(!approx_le(1.1, 1.0));
        assert!(!approx_ge(0.9, 1.0));
    }

    #[test]
    fn total_cmp_orders_like_partial_cmp_on_normal_values() {
        assert_eq!(total_cmp_f64(&1.0, &2.0), Ordering::Less);
        assert_eq!(total_cmp_f64(&2.0, &1.0), Ordering::Greater);
        assert_eq!(total_cmp_f64(&1.5, &1.5), Ordering::Equal);
    }

    #[test]
    fn total_cmp_handles_nan_deterministically() {
        // NaN sorts after +inf under total order; we only require determinism.
        assert_eq!(total_cmp_f64(&f64::NAN, &f64::NAN), Ordering::Equal);
        assert_eq!(total_cmp_f64(&f64::INFINITY, &f64::NAN), Ordering::Less);
    }

    #[test]
    fn magnitude_validity() {
        assert!(valid_magnitude(0.0));
        assert!(valid_magnitude(3.5));
        assert!(!valid_magnitude(-1.0));
        assert!(!valid_magnitude(f64::NAN));
        assert!(!valid_magnitude(f64::INFINITY));
        assert!(valid_positive(1e-12));
        assert!(!valid_positive(0.0));
    }
}
