//! # osr-model — shared vocabulary for rejection scheduling
//!
//! Core data types shared by every crate in the workspace reproducing
//! *"Online Non-preemptive Scheduling on Unrelated Machines with
//! Rejections"* (Lucarelli, Moseley, Thang, Srivastav, Trystram — SPAA
//! 2018, arXiv:1802.10309).
//!
//! The model follows the paper's setting:
//!
//! * a fixed set of **unrelated machines** `M = {0, …, m-1}`;
//! * jobs arrive **online** at their release time `r_j`; a job `j` has a
//!   machine-dependent processing requirement `p_ij` (a *time* in the
//!   flow-time problem of §2, a *volume* in the speed-scaling problems of
//!   §3–§4), a weight `w_j` (§3) and optionally a deadline `d_j` (§4);
//! * schedules are **non-preemptive**: once started on a machine, a job
//!   runs continuously until it completes — or until the scheduler
//!   *rejects* it (the rejection model allows interrupting-by-discarding);
//! * the outcome of a run is a [`ScheduleLog`]: for every job either a
//!   completed [`Execution`] or a [`Rejection`] (possibly with a partial
//!   run that occupied the machine before the rejection).
//!
//! The crate deliberately contains **no scheduling policy** — policies
//! live in `osr-core` (the paper's algorithms) and `osr-baselines`
//! (comparators). Everything here is inert data plus metric/validation
//! helpers shared by both.

#![warn(missing_docs)]

pub mod error;
pub mod instance;
pub mod io;
pub mod job;
pub mod log;
pub mod metrics;
pub mod pool;
pub mod time;

pub use error::ModelError;
pub use instance::{Instance, InstanceBuilder, InstanceKind};
pub use job::{EligMask, Job, JobId, MachineId, RackPHat};
pub use log::{Execution, FinishedLog, JobFate, PartialRun, RejectReason, Rejection, ScheduleLog};
pub use metrics::{EnergyMetrics, FlowMetrics, Metrics};
pub use pool::{MaskScratch, OnlineSet};
pub use time::{approx_eq, approx_ge, approx_le, total_cmp_f64, EPS};
