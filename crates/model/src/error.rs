//! Error type shared by model construction and I/O.

/// Errors produced while building, validating or (de)serializing model
/// data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A structural invariant was violated (message explains which).
    Invalid(String),
    /// A textual instance/log file could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Underlying I/O failure (message of the `std::io::Error`).
    Io(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Invalid(m) => write!(f, "invalid model data: {m}"),
            ModelError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ModelError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ModelError::Invalid("x".into())
            .to_string()
            .contains("invalid"));
        assert!(ModelError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(ModelError::Io("gone".into()).to_string().contains("i/o"));
    }

    #[test]
    fn from_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: ModelError = io.into();
        assert!(matches!(e, ModelError::Io(_)));
    }
}
