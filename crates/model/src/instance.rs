//! Problem instances: a machine count plus a release-ordered job list.

use crate::error::ModelError;
use crate::job::{Job, JobId, MachineId};

/// Which of the paper's three problems an instance is intended for.
///
/// The kinds only differ in which job fields are meaningful; the data
/// layout is shared. Validation is stricter for [`InstanceKind::Energy`]
/// (deadlines required).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceKind {
    /// §2 — total flow-time; `sizes` are processing times, weights ignored.
    FlowTime,
    /// §3 — weighted flow-time plus energy; `sizes` are volumes.
    FlowEnergy,
    /// §4 — energy with deadlines; `sizes` are volumes, deadlines required.
    Energy,
}

impl std::fmt::Display for InstanceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceKind::FlowTime => write!(f, "flow-time"),
            InstanceKind::FlowEnergy => write!(f, "flow+energy"),
            InstanceKind::Energy => write!(f, "energy"),
        }
    }
}

/// An online scheduling instance.
///
/// Invariants (enforced by [`InstanceBuilder::build`] and
/// [`Instance::validate`]):
///
/// * `jobs[k].id == JobId(k)` — ids are dense indices;
/// * jobs are sorted by non-decreasing release time (the online arrival
///   order; ties keep id order so reruns are deterministic);
/// * every job is structurally valid for `machines` machines.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    machines: usize,
    jobs: Vec<Job>,
    kind: InstanceKind,
}

impl Instance {
    /// Builds an instance from parts, validating all invariants.
    pub fn new(machines: usize, jobs: Vec<Job>, kind: InstanceKind) -> Result<Self, ModelError> {
        let inst = Instance {
            machines,
            jobs,
            kind,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Number of machines `m`.
    #[inline]
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Machine ids `0..m`.
    pub fn machine_ids(&self) -> impl Iterator<Item = MachineId> {
        (0..self.machines as u32).map(MachineId)
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the instance has no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Jobs in release order.
    #[inline]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The job with the given id.
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.idx()]
    }

    /// Problem kind this instance was built for.
    #[inline]
    pub fn kind(&self) -> InstanceKind {
        self.kind
    }

    /// Total weight `Σ_j w_j`.
    pub fn total_weight(&self) -> f64 {
        self.jobs.iter().map(|j| j.weight).sum()
    }

    /// Sum over jobs of the smallest size `Σ_j min_i p_ij` — a trivial
    /// lower bound on total flow-time (§2 workloads). Jobs eligible on
    /// no machine contribute nothing: they cannot be served by any
    /// schedule (every scheduler rejects them at arrival for zero
    /// flow), so summing their infinite `min_size` would poison the
    /// bound.
    pub fn total_min_size(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.min_size())
            .filter(|p| p.is_finite())
            .sum()
    }

    /// Ratio `Δ` of the largest to the smallest finite size in the
    /// instance (the parameter in Lemma 1).
    pub fn size_ratio(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for j in &self.jobs {
            for &p in &j.sizes {
                if p.is_finite() {
                    lo = lo.min(p);
                    hi = hi.max(p);
                }
            }
        }
        if lo.is_finite() && lo > 0.0 {
            hi / lo
        } else {
            f64::NAN
        }
    }

    /// Latest deadline, or latest release if no deadlines — an upper
    /// bound for time-horizon discretization (§4).
    pub fn horizon(&self) -> f64 {
        let mut h = 0.0f64;
        for j in &self.jobs {
            h = h.max(j.deadline.unwrap_or(j.release));
        }
        h
    }

    /// Checks all structural invariants; see type-level docs.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.machines == 0 {
            return Err(ModelError::Invalid("instance has zero machines".into()));
        }
        let mut prev_release = 0.0f64;
        for (k, job) in self.jobs.iter().enumerate() {
            if job.id.idx() != k {
                return Err(ModelError::Invalid(format!(
                    "job at index {k} has id {} (ids must be dense)",
                    job.id
                )));
            }
            job.validate(self.machines).map_err(ModelError::Invalid)?;
            if job.release < prev_release {
                return Err(ModelError::Invalid(format!(
                    "jobs not sorted by release: {} at {} after {}",
                    job.id, job.release, prev_release
                )));
            }
            prev_release = job.release;
            if self.kind == InstanceKind::Energy && job.deadline.is_none() {
                return Err(ModelError::Invalid(format!(
                    "{}: energy instances require deadlines",
                    job.id
                )));
            }
        }
        Ok(())
    }
}

/// Incremental builder that assigns dense ids and sorts by release.
///
/// ```
/// use osr_model::{InstanceBuilder, InstanceKind};
/// let inst = InstanceBuilder::new(2, InstanceKind::FlowTime)
///     .job(3.0, vec![1.0, 2.0])
///     .job(0.0, vec![4.0, 1.0])
///     .build()
///     .unwrap();
/// assert_eq!(inst.len(), 2);
/// // Sorted by release; ids re-assigned densely in arrival order.
/// assert_eq!(inst.jobs()[0].release, 0.0);
/// assert_eq!(inst.jobs()[0].id.idx(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    machines: usize,
    kind: InstanceKind,
    // (release, weight, deadline, sizes); ids assigned at build time.
    pending: Vec<(f64, f64, Option<f64>, Vec<f64>)>,
}

impl InstanceBuilder {
    /// Starts a builder for `machines` machines.
    pub fn new(machines: usize, kind: InstanceKind) -> Self {
        InstanceBuilder {
            machines,
            kind,
            pending: Vec::new(),
        }
    }

    /// Adds an unweighted, deadline-free job.
    pub fn job(mut self, release: f64, sizes: Vec<f64>) -> Self {
        self.pending.push((release, 1.0, None, sizes));
        self
    }

    /// Adds a weighted job.
    pub fn weighted_job(mut self, release: f64, weight: f64, sizes: Vec<f64>) -> Self {
        self.pending.push((release, weight, None, sizes));
        self
    }

    /// Adds a job with a deadline.
    pub fn deadline_job(mut self, release: f64, deadline: f64, sizes: Vec<f64>) -> Self {
        self.pending.push((release, 1.0, Some(deadline), sizes));
        self
    }

    /// Adds a job with every field explicit.
    pub fn full_job(
        mut self,
        release: f64,
        weight: f64,
        deadline: Option<f64>,
        sizes: Vec<f64>,
    ) -> Self {
        self.pending.push((release, weight, deadline, sizes));
        self
    }

    /// Adds a job identical on all machines (identical-machines shortcut).
    pub fn identical_job(mut self, release: f64, size: f64) -> Self {
        let sizes = vec![size; self.machines];
        self.pending.push((release, 1.0, None, sizes));
        self
    }

    /// Number of jobs added so far.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no jobs were added.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Sorts by release (stable), assigns dense ids, validates.
    pub fn build(mut self) -> Result<Instance, ModelError> {
        self.pending.sort_by(|a, b| a.0.total_cmp(&b.0));
        let jobs = self
            .pending
            .into_iter()
            .enumerate()
            .map(|(k, (release, weight, deadline, sizes))| {
                Job::full(k as u32, release, weight, deadline, sizes)
            })
            .collect();
        Instance::new(self.machines, jobs, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Instance {
        InstanceBuilder::new(2, InstanceKind::FlowTime)
            .job(0.0, vec![2.0, 5.0])
            .job(1.0, vec![3.0, 1.0])
            .job(1.0, vec![4.0, 4.0])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_sorts_and_assigns_dense_ids() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(5.0, vec![1.0])
            .job(0.0, vec![1.0])
            .job(2.0, vec![1.0])
            .build()
            .unwrap();
        let releases: Vec<f64> = inst.jobs().iter().map(|j| j.release).collect();
        assert_eq!(releases, vec![0.0, 2.0, 5.0]);
        for (k, j) in inst.jobs().iter().enumerate() {
            assert_eq!(j.id.idx(), k);
        }
    }

    #[test]
    fn builder_sort_is_stable_for_ties() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(1.0, vec![10.0])
            .job(1.0, vec![20.0])
            .build()
            .unwrap();
        assert_eq!(inst.jobs()[0].sizes[0], 10.0);
        assert_eq!(inst.jobs()[1].sizes[0], 20.0);
    }

    #[test]
    fn aggregates() {
        let inst = toy();
        assert_eq!(inst.machines(), 2);
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.total_weight(), 3.0);
        assert_eq!(inst.total_min_size(), 2.0 + 1.0 + 4.0);
        assert_eq!(inst.size_ratio(), 5.0);
    }

    #[test]
    fn zero_machines_rejected() {
        assert!(InstanceBuilder::new(0, InstanceKind::FlowTime)
            .build()
            .is_err());
    }

    #[test]
    fn energy_kind_requires_deadlines() {
        let err = InstanceBuilder::new(1, InstanceKind::Energy)
            .job(0.0, vec![1.0])
            .build();
        assert!(err.is_err());
        let ok = InstanceBuilder::new(1, InstanceKind::Energy)
            .deadline_job(0.0, 4.0, vec![1.0])
            .build();
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().horizon(), 4.0);
    }

    #[test]
    fn unsorted_direct_construction_rejected() {
        let jobs = vec![Job::new(0, 5.0, vec![1.0]), Job::new(1, 0.0, vec![1.0])];
        assert!(Instance::new(1, jobs, InstanceKind::FlowTime).is_err());
    }

    #[test]
    fn non_dense_ids_rejected() {
        let jobs = vec![Job::new(3, 0.0, vec![1.0])];
        assert!(Instance::new(1, jobs, InstanceKind::FlowTime).is_err());
    }

    #[test]
    fn machine_ids_iterates_all() {
        let ids: Vec<MachineId> = toy().machine_ids().collect();
        assert_eq!(ids, vec![MachineId(0), MachineId(1)]);
    }
}
