//! CLI command implementations.
//!
//! Each command is a pure function from parsed [`Args`] to a
//! [`CmdOutput`] — a machine-readable stdout payload plus
//! informational notices that `main` routes to stderr, so piping
//! stdout always yields clean data. File writes happen only for
//! explicitly requested `--out`/`--log` paths. [`dispatch`] routes a
//! parsed command line. The two interactive commands (`serve`, `top`)
//! live in [`crate::serve`] and additionally read stdin / a unix
//! socket while running.

use std::fmt::Write as _;
use std::fs;

use osr_baselines::{flow_lower_bound, GreedyScheduler, SpeedAugScheduler};
use osr_core::bounds;
use osr_core::energyflow::{EnergyFlowParams, EnergyFlowScheduler};
use osr_core::energymin::{EnergyMinParams, EnergyMinScheduler};
use osr_core::flowtime::{WeightedFlowParams, WeightedFlowScheduler};
use osr_core::{CapacityIndexMode, DispatchIndex, FlowParams, FlowScheduler, QueueBackend};
use osr_model::{io, FinishedLog, Instance, InstanceKind, Metrics};
use osr_sim::{
    render_gantt, validate_log, CapacityPlan, EventBackend, OnlineScheduler, ValidationConfig,
};
use osr_workload::{
    parse_failure_trace, ArrivalSpec, ChurnSpec, EnergyWorkload, FlowWorkload, MachineSpec,
    SizeSpec, TraceImport, WeightSpec,
};

use crate::args::{split_spec, Args};

/// Boolean flags (options that take no value) across all subcommands —
/// the single list `main` and the tests both register with
/// [`Args::parse`].
pub const FLAGS: &[&str] = &["gantt", "once", "recover"];

/// A command's result: the stdout payload plus informational notices
/// destined for stderr. Keeping the two apart is a contract — stdout
/// stays machine-parseable (instances, logs, tables) no matter what
/// the run wants to tell the operator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CmdOutput {
    /// Machine-readable payload, printed verbatim to stdout.
    pub stdout: String,
    /// Informational notices, printed line-by-line to stderr.
    pub notices: Vec<String>,
}

impl From<String> for CmdOutput {
    fn from(stdout: String) -> Self {
        CmdOutput {
            stdout,
            notices: Vec::new(),
        }
    }
}

/// Usage text printed on errors and `osr help`: the static command
/// grammar plus the runtime-knob table generated from
/// [`osr_core::KNOBS`], so the help can never drift from the parsers.
pub fn usage() -> String {
    format!(
        "{USAGE}\nRUNTIME KNOBS (run/serve/run_experiments; all result-neutral):\n{}\
         \nSERVE DURABILITY (serve only; recovery reproduces the log byte-identically):\n{}",
        osr_core::knob_help("  "),
        osr_core::serve_knob_help("  ")
    )
}

/// Static usage text (command grammar only — [`usage`] appends the
/// generated runtime-knob table).
pub const USAGE: &str = "\
osr — online non-preemptive scheduling with rejections (SPAA'18)

USAGE:
  osr gen      --kind flowtime|flowenergy|energy --n N --machines M [--seed S]
               [--from-trace FILE]   (import `release size [weight [deadline]]` rows)
               [--scenario NAME]     (named grid point
                                      `<arrivals>-<sizes>-<machines>[-churn:<rate>]`,
                                      e.g. mmpp-pareto-affinity; axes below override it)
               [--arrivals poisson:RATE|bursty:B:W:G|mmpp:ON:BURST:OFF|batch:P:G|once]
               [--sizes uniform:LO:HI|pareto:SHAPE:LO:HI|exp:MEAN|bimodal:S:L:P]
               [--machine-model identical|related:F|unrelated:LO:HI|restricted:K|affinity:G:P]
               [--weights unit|uniform:LO:HI] [--slack LO:HI] [--out FILE]
               [--churn RATE]        (elastic-pool capacity events; overrides the
                                      scenario's churn segment)
               [--capacity-out FILE] (write the churn capacity plan as a
                                      `time,machine,kind` failure trace)
               [--serve-script FILE] (write the instance+plan as an `osr serve`
                                      replay script; prints the --offline list)
  osr run      --algo SPEC --input FILE [--log FILE] [--gantt] [--alpha A]
               [--capacity FILE]     (replay a `time,machine,kind` failure trace:
                                      machines join/drain/crash mid-run —
                                      flow/wflow/energyflow only)
               [--capacity-index incremental|rebuild] (elastic index maintenance:
                                      grow/tombstone vs rebuild-from-scratch oracle)
               [--queue-backend treap|naive]      (flow only: pending-queue structure)
               [--event-backend binary|pairing]   (flow/wflow/energyflow)
               [--dispatch-index pruned|linear]   (flow/wflow/energyflow)
               [--propagation lazy|eager]         (flow/wflow/energyflow: tournament
                                                   ancestor repair — lazy default)
               [--shards N]                       (flow/wflow/energyflow: epoch-sharded
                                                   driver; 1 = serial oracle, results
                                                   byte-identical at any N)
               [--kernels chunked|scalar]         (flow/wflow/energyflow: SoA hot-loop
                                                   kernel layer — scalar is the
                                                   bit-exact oracle)
               SPEC: flow:EPS | wflow:EPS | energyflow:EPS:ALPHA | energymin:ALPHA
                     | greedy:spt | greedy:fifo | speedaug:EPS_S:EPS_R
  osr serve    --algo flow:EPS|wflow:EPS|energyflow:EPS:ALPHA --machines M
               [--offline I,J,..]    (machines that start outside the pool)
               [--socket PATH]       (also accept the line protocol on a
                                      unix socket; replies ok/err/stats)
               [--once]              (finish at stdin EOF instead of waiting
                                      for `shutdown`)
               [--log FILE]          (also write the final log to FILE)
               [--journal PATH]      (write-ahead event journal, fsync'd before
                                      state mutates; snapshots to PATH.snap)
               [--recover]           (replay an existing --journal before
                                      accepting new events; torn tail dropped)
               [--snap-every N]      (snapshot cadence in records; 0 disables)
               [--ingest-buffer N]   (bounded ingest channel: stdin blocks,
                                      socket lines shed `err overloaded`)
               [--failpoint SPEC]    (fault injection, point[:nth][:action])
               runtime knobs as `osr run`; stdout carries exactly the final
               schedule log (byte-identical to the offline run over the same
               event stream). stdin/socket lines:
                 arrive <id> [@T] [w=W] <size>...   (size `inf` = ineligible)
                 join|drain|crash <machine> [@T]
                 advance <T> | stats | shutdown
  osr top      --socket PATH [--frames N] [--interval-ms T] [--retries R]
               (live ops TUI over a serve socket: queue depths, flow-time
                percentiles, reject counts by reason, redispatches, shed
                counts, and dispatch-index stats; N=0 polls until the server
                exits; transient socket failures retry R times with capped
                exponential backoff before giving up)
  osr validate --input FILE --log FILE [--model flowtime|flowenergy|energy]
               [--capacity FILE]     (check runs against the failure trace's
                                      online windows)
  osr compare  --input FILE [--eps E]
  osr bounds   [--eps E] [--alpha A]
  osr help
";

/// Routes a parsed command line to its implementation.
pub fn dispatch(args: &Args) -> Result<CmdOutput, String> {
    match args.subcommand() {
        Some("gen") => cmd_gen(args).map(CmdOutput::from),
        Some("run") => cmd_run(args),
        Some("serve") => crate::serve::cmd_serve(args),
        Some("top") => crate::serve::cmd_top(args),
        Some("validate") => cmd_validate(args).map(CmdOutput::from),
        Some("compare") => cmd_compare(args).map(CmdOutput::from),
        Some("bounds") => cmd_bounds(args).map(CmdOutput::from),
        Some("help") | None => Ok(CmdOutput::from(usage())),
        Some(other) => Err(format!("unknown subcommand `{other}`\n\n{}", usage())),
    }
}

fn parse_kind(s: &str) -> Result<InstanceKind, String> {
    match s {
        "flowtime" => Ok(InstanceKind::FlowTime),
        "flowenergy" => Ok(InstanceKind::FlowEnergy),
        "energy" => Ok(InstanceKind::Energy),
        other => Err(format!("unknown kind `{other}`")),
    }
}

fn parse_arrivals(spec: &str) -> Result<ArrivalSpec, String> {
    let (head, v) = split_spec(spec);
    match (head.as_str(), v.as_slice()) {
        ("poisson", [rate]) => Ok(ArrivalSpec::Poisson { rate: *rate }),
        ("bursty", [b, w, g]) => Ok(ArrivalSpec::Bursty {
            burst: *b as usize,
            within: *w,
            gap: *g,
        }),
        ("mmpp", [on, burst, off]) => {
            // Validated here so bad values surface through the error
            // path (exit 1), never the generator's asserts.
            if !(*on > 0.0 && on.is_finite()) {
                return Err(format!("mmpp on-rate must be positive, got {on}"));
            }
            if !(*burst >= 1.0 && burst.is_finite()) {
                return Err(format!("mmpp burst mean must be >= 1, got {burst}"));
            }
            if !(*off >= 0.0 && off.is_finite()) {
                return Err(format!("mmpp off mean must be non-negative, got {off}"));
            }
            Ok(ArrivalSpec::Mmpp {
                on_rate: *on,
                burst_mean: *burst,
                off_mean: *off,
            })
        }
        ("batch", [p, g]) => Ok(ArrivalSpec::Batch {
            per_batch: *p as usize,
            gap: *g,
        }),
        ("once", []) => Ok(ArrivalSpec::AllAtOnce),
        _ => Err(format!("bad arrivals spec `{spec}`")),
    }
}

fn parse_sizes(spec: &str) -> Result<SizeSpec, String> {
    let (head, v) = split_spec(spec);
    match (head.as_str(), v.as_slice()) {
        ("uniform", [lo, hi]) => Ok(SizeSpec::Uniform { lo: *lo, hi: *hi }),
        ("pareto", [shape, lo, hi]) => Ok(SizeSpec::BoundedPareto {
            shape: *shape,
            lo: *lo,
            hi: *hi,
        }),
        ("exp", [mean]) => Ok(SizeSpec::Exponential { mean: *mean }),
        ("bimodal", [s, l, p]) => Ok(SizeSpec::Bimodal {
            short: *s,
            long: *l,
            p_long: *p,
        }),
        _ => Err(format!("bad sizes spec `{spec}`")),
    }
}

fn parse_machine_model(spec: &str) -> Result<MachineSpec, String> {
    let (head, v) = split_spec(spec);
    match (head.as_str(), v.as_slice()) {
        ("identical", []) => Ok(MachineSpec::Identical),
        ("related", [f]) => Ok(MachineSpec::RelatedSpeeds { max_factor: *f }),
        ("unrelated", [lo, hi]) => Ok(MachineSpec::Unrelated {
            lo_factor: *lo,
            hi_factor: *hi,
        }),
        ("restricted", [k]) => Ok(MachineSpec::Restricted { avg_eligible: *k }),
        ("affinity", [g, p]) => {
            if *g < 1.0 {
                return Err(format!("affinity group count must be >= 1, got {g}"));
            }
            if !(0.0..=1.0).contains(p) {
                return Err(format!(
                    "affinity drop probability must be in [0,1], got {p}"
                ));
            }
            Ok(MachineSpec::Affinity {
                groups: *g as usize,
                drop_prob: *p,
            })
        }
        _ => Err(format!("bad machine-model spec `{spec}`")),
    }
}

fn parse_weights(spec: &str) -> Result<WeightSpec, String> {
    let (head, v) = split_spec(spec);
    match (head.as_str(), v.as_slice()) {
        ("unit", []) => Ok(WeightSpec::Unit),
        ("uniform", [lo, hi]) => Ok(WeightSpec::Uniform { lo: *lo, hi: *hi }),
        _ => Err(format!("bad weights spec `{spec}`")),
    }
}

/// Backend selections for `osr run` / `osr serve`, parsed once from
/// the options so bad values surface through the command's error path
/// (exit code 1), never a panic. The four shared runtime knobs parse
/// through the [`osr_core`] knob vocabulary, so their error messages
/// match `run_experiments` and the generated help exactly.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BackendOpts {
    queue: Option<QueueBackend>,
    events: Option<EventBackend>,
    pub(crate) dispatch: Option<DispatchIndex>,
    propagation: Option<osr_core::Propagation>,
    capacity_index: Option<CapacityIndexMode>,
    pub(crate) shards: Option<usize>,
    kernels: Option<osr_core::KernelMode>,
}

impl BackendOpts {
    pub(crate) fn parse(args: &Args) -> Result<Self, String> {
        fn knob<T>(
            args: &Args,
            name: &str,
            parse: fn(&str) -> Result<T, String>,
        ) -> Result<Option<T>, String> {
            args.opt(name).map(parse).transpose()
        }
        let queue = match args.opt("queue-backend") {
            None => None,
            Some("treap") => Some(QueueBackend::Treap),
            Some("naive") => Some(QueueBackend::Naive),
            Some(other) => {
                return Err(format!(
                    "bad value `{other}` for --queue-backend (want treap|naive)"
                ))
            }
        };
        let events = match args.opt("event-backend") {
            None => None,
            Some("binary") => Some(EventBackend::BinaryHeap),
            Some("pairing") => Some(EventBackend::PairingHeap),
            Some(other) => {
                return Err(format!(
                    "bad value `{other}` for --event-backend (want binary|pairing)"
                ))
            }
        };
        Ok(BackendOpts {
            queue,
            events,
            dispatch: knob(args, "dispatch-index", osr_core::parse_dispatch)?,
            propagation: knob(args, "propagation", osr_core::parse_propagation)?,
            capacity_index: knob(args, "capacity-index", osr_core::parse_capacity_index)?,
            shards: knob(args, "shards", osr_core::parse_shards)?,
            kernels: knob(args, "kernels", osr_core::parse_kernels)?,
        })
    }

    /// The propagation and kernel toggles are process-wide defaults
    /// (like `run_experiments --propagation/--kernels`); apply them
    /// before any scheduler builds its dispatch index.
    pub(crate) fn apply_propagation(&self) {
        if let Some(p) = self.propagation {
            osr_core::set_default_propagation(p);
        }
        if let Some(k) = self.kernels {
            osr_core::set_default_kernel_mode(k);
        }
    }

    /// Overlays every explicit selection onto a params struct's
    /// embedded [`osr_core::SchedulerConfig`] block (unset options keep
    /// the process defaults).
    pub(crate) fn apply_to(&self, config: &mut osr_core::SchedulerConfig) {
        if let Some(q) = self.queue {
            config.backend = q;
        }
        if let Some(e) = self.events {
            config.events = e;
        }
        if let Some(d) = self.dispatch {
            config.dispatch = d;
        }
        if let Some(ci) = self.capacity_index {
            config.capacity_index = ci;
        }
        if let Some(s) = self.shards {
            config.shards = s;
        }
        if let Some(k) = self.kernels {
            config.kernels = k;
        }
    }

    /// Errors when an option was given but the chosen algorithm cannot
    /// honor it — silent drops would defeat the ablation's point.
    pub(crate) fn reject_unsupported(
        &self,
        spec: &str,
        queue_ok: bool,
        rest_ok: bool,
    ) -> Result<(), String> {
        if self.queue.is_some() && !queue_ok {
            return Err(format!("--queue-backend does not apply to `{spec}`"));
        }
        if (self.events.is_some()
            || self.dispatch.is_some()
            || self.propagation.is_some()
            || self.capacity_index.is_some()
            || self.shards.is_some()
            || self.kernels.is_some())
            && !rest_ok
        {
            return Err(format!(
                "--event-backend/--dispatch-index/--propagation/--capacity-index/--shards/\
                 --kernels do not apply to `{spec}`"
            ));
        }
        Ok(())
    }
}

/// `osr gen` — generate an instance (random workload or trace import).
pub fn cmd_gen(args: &Args) -> Result<String, String> {
    // Trace import path: --from-trace FILE replaces the random models.
    if let Some(path) = args.opt("from-trace") {
        let machines: usize = args.opt_parse("machines", 1)?;
        let seed: u64 = args.opt_parse("seed", 1)?;
        let machine_model = match args.opt("machine-model") {
            Some(spec) => parse_machine_model(spec)?,
            None => MachineSpec::Identical,
        };
        let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let importer = TraceImport {
            machines,
            machine_model,
            seed,
        };
        let instance = importer.parse(&text).map_err(|e| format!("{path}: {e}"))?;
        let out_text = io::instance_to_string(&instance);
        return if let Some(out) = args.opt("out") {
            fs::write(out, &out_text).map_err(|e| format!("writing {out}: {e}"))?;
            Ok(format!(
                "imported {} jobs ({}) from {path} to {out}\n",
                instance.len(),
                instance.kind()
            ))
        } else {
            Ok(out_text)
        };
    }

    let kind = parse_kind(args.opt("kind").unwrap_or("flowtime"))?;
    let n: usize = args.opt_parse("n", 100)?;
    let machines: usize = args.opt_parse("machines", 4)?;
    let seed: u64 = args.opt_parse("seed", 1)?;

    // A named scenario fixes all three axes; the explicit per-axis
    // options below still override individual choices.
    let mut spec = match args.opt("scenario") {
        Some(name) => osr_workload::Scenario::named(name, n, machines, seed)?,
        None => FlowWorkload::standard(n, machines, seed),
    };
    if let Some(s) = args.opt("arrivals") {
        spec.arrivals = parse_arrivals(s)?;
    }
    if let Some(s) = args.opt("sizes") {
        spec.sizes = parse_sizes(s)?;
    }
    if let Some(s) = args.opt("machine-model") {
        spec.machine_model = parse_machine_model(s)?;
    }
    if let Some(s) = args.opt("weights") {
        spec.weights = parse_weights(s)?;
    }
    if let Some(s) = args.opt("churn") {
        let rate: f64 = s
            .parse()
            .map_err(|_| format!("bad value `{s}` for --churn"))?;
        if !rate.is_finite() || rate <= 0.0 {
            return Err(format!("--churn rate must be finite and positive, got {s}"));
        }
        spec.churn = Some(ChurnSpec { rate });
    }
    if spec.churn.is_some() && kind == InstanceKind::Energy {
        return Err("churn applies to flow-time/flow+energy kinds only \
                    (energymin has no elastic-pool support)"
            .into());
    }
    if spec.churn.is_some() && args.opt("capacity-out").is_none() {
        return Err(
            "churn scenarios emit a capacity plan; give --capacity-out FILE to write it".into(),
        );
    }
    if spec.churn.is_none() && args.opt("capacity-out").is_some() {
        return Err("--capacity-out needs churn (a `-churn:<rate>` scenario or --churn)".into());
    }

    let instance = if kind == InstanceKind::Energy {
        let (lo, hi) = match args.opt("slack") {
            Some(s) => {
                let (_, v) = split_spec(&format!("x:{s}"));
                match v.as_slice() {
                    [lo, hi] => (*lo, *hi),
                    _ => return Err(format!("bad slack spec `{s}` (want LO:HI)")),
                }
            }
            None => (1.2, 3.0),
        };
        EnergyWorkload {
            base: spec,
            min_slack: lo,
            max_slack: hi,
        }
        .generate()
    } else {
        spec.generate(kind)
    };

    let mut note = String::new();
    let plan = if spec.churn.is_some() {
        spec.capacity_plan(&instance)
    } else {
        CapacityPlan::empty()
    };
    if let Some(path) = args.opt("capacity-out") {
        fs::write(path, plan.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
        note = format!("wrote {} capacity events to {path}\n", plan.len());
    }
    if let Some(path) = args.opt("serve-script") {
        let (script, offline) = osr_workload::serve_script(&instance, &plan)?;
        fs::write(path, &script).map_err(|e| format!("writing {path}: {e}"))?;
        let offline = if offline.is_empty() {
            "none".to_string()
        } else {
            offline
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        };
        note.push_str(&format!(
            "wrote serve replay script to {path} (initially offline machines: {offline})\n"
        ));
    }

    let text = io::instance_to_string(&instance);
    if let Some(path) = args.opt("out") {
        fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        Ok(format!(
            "wrote {} jobs on {} machines to {path}\n{note}",
            instance.len(),
            machines
        ))
    } else {
        Ok(text)
    }
}

fn load_instance(args: &Args) -> Result<Instance, String> {
    let path = args.require("input")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    io::instance_from_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn config_for(instance: &Instance, speeds_vary: bool) -> ValidationConfig {
    match instance.kind() {
        InstanceKind::FlowTime if !speeds_vary => ValidationConfig::flow_time(),
        InstanceKind::FlowTime => ValidationConfig::flow_energy(),
        InstanceKind::FlowEnergy => ValidationConfig::flow_energy(),
        InstanceKind::Energy => ValidationConfig::energy(),
    }
}

/// Runs the algorithm named by `spec` on `instance`, returning the log,
/// a display name, whether speeds deviate from 1, and an optional dual
/// objective (flow algorithm only). A non-empty `capacity` plan replays
/// machine join/drain/crash events — only the three capacity-aware
/// schedulers accept one.
fn run_algo(
    spec: &str,
    instance: &Instance,
    opts: BackendOpts,
    capacity: &CapacityPlan,
) -> Result<(FinishedLog, String, bool, Option<f64>), String> {
    let reject_capacity = |ok: bool| {
        if !capacity.is_empty() && !ok {
            return Err(format!(
                "--capacity does not apply to `{spec}` (capacity-aware schedulers: \
                 flow|wflow|energyflow)"
            ));
        }
        Ok(())
    };
    let (head, v) = split_spec(spec);
    match (head.as_str(), v.as_slice()) {
        ("flow", [eps]) => {
            opts.apply_propagation();
            let mut params = FlowParams::new(*eps);
            opts.apply_to(&mut params.config);
            let sched = FlowScheduler::new(params)?.with_capacity(capacity.clone());
            let out = sched.run(instance);
            Ok((out.log, sched.name(), false, Some(out.dual.objective())))
        }
        ("wflow", [eps]) => {
            opts.reject_unsupported(spec, false, true)?;
            opts.apply_propagation();
            let mut params = WeightedFlowParams::new(*eps);
            opts.apply_to(&mut params.config);
            let sched = WeightedFlowScheduler::new(params)?.with_capacity(capacity.clone());
            let name = sched.name();
            Ok((sched.run(instance).log, name, false, None))
        }
        ("energyflow", [eps, alpha]) => {
            opts.reject_unsupported(spec, false, true)?;
            opts.apply_propagation();
            let mut params = EnergyFlowParams::new(*eps, *alpha);
            opts.apply_to(&mut params.config);
            let sched = EnergyFlowScheduler::new(params)?.with_capacity(capacity.clone());
            let name = sched.name();
            Ok((sched.run(instance).log, name, true, None))
        }
        ("energymin", [alpha]) => {
            opts.reject_unsupported(spec, false, false)?;
            reject_capacity(false)?;
            let sched = EnergyMinScheduler::new(EnergyMinParams::new(*alpha))?;
            let name = sched.name();
            Ok((sched.run(instance).log, name, true, None))
        }
        ("greedy", _) => {
            opts.reject_unsupported(spec, false, false)?;
            reject_capacity(false)?;
            let mut sched = match spec {
                "greedy:spt" => GreedyScheduler::ect_spt(),
                "greedy:fifo" => GreedyScheduler::ect_fifo(),
                other => return Err(format!("unknown greedy variant `{other}`")),
            };
            let name = sched.name();
            Ok((sched.schedule(instance), name, false, None))
        }
        ("speedaug", [eps_s, eps_r]) => {
            opts.reject_unsupported(spec, false, false)?;
            reject_capacity(false)?;
            let sched = SpeedAugScheduler::new(*eps_s, *eps_r)?;
            let name = sched.name();
            Ok((sched.run(instance).0, name, true, None))
        }
        _ => Err(format!("unknown algo spec `{spec}`\n\n{}", usage())),
    }
}

/// Loads the `--capacity` failure trace, if given (empty plan = the
/// static fixed-pool model).
fn load_capacity(args: &Args, machines: usize) -> Result<CapacityPlan, String> {
    let Some(path) = args.opt("capacity") else {
        return Ok(CapacityPlan::empty());
    };
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let plan = parse_failure_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    plan.check_machines(machines)
        .map_err(|e| format!("{path}: {e}"))?;
    Ok(plan)
}

/// Informational notices for explicitly requested knobs that the run
/// could not honor at this machine count. They go to stderr (via
/// [`CmdOutput::notices`]) so stdout stays a clean report, but they
/// must be said *somewhere* — otherwise ablation runs label their
/// results with a strategy that never executed.
pub(crate) fn ineffective_knob_notices(opts: &BackendOpts, machines: usize) -> Vec<String> {
    let mut notices = Vec::new();
    if let Some(req) = opts.dispatch {
        let eff = osr_core::effective_dispatch_index(req, machines);
        if eff != req {
            notices.push(format!(
                "note: --dispatch-index {req} is ineffective at m={machines} \
                 (below PRUNED_MIN_MACHINES={}); the {eff} scan ran — label ablation \
                 results accordingly",
                osr_core::PRUNED_MIN_MACHINES,
            ));
        }
    }
    // Same discipline for the shard toggle: below the sharding crossover
    // (a shard owns at least one 64-machine rack) a multi-shard request
    // collapses to the serial loop.
    if let Some(req) = opts.shards {
        let eff = osr_core::effective_shards(req, machines);
        if req > 1 && eff == 1 {
            notices.push(format!(
                "note: --shards {req} is ineffective at m={machines} (a shard owns at \
                 least one 64-machine rack); the serial loop ran — label ablation \
                 results accordingly"
            ));
        }
    }
    notices
}

/// `osr run` — run one scheduler on an instance.
pub fn cmd_run(args: &Args) -> Result<CmdOutput, String> {
    let instance = load_instance(args)?;
    let spec = args.opt("algo").unwrap_or("flow:0.25");
    let alpha: f64 = args.opt_parse("alpha", 2.0)?;
    let opts = BackendOpts::parse(args)?;
    let capacity = load_capacity(args, instance.machines())?;

    let (log, name, speeds_vary, dual) = run_algo(spec, &instance, opts, &capacity)?;
    let notices = ineffective_knob_notices(&opts, instance.machines());
    let config = config_for(&instance, speeds_vary).with_capacity(capacity.clone());
    let report = validate_log(&instance, &log, &config);
    if !report.is_valid() {
        return Err(format!(
            "schedule failed validation: {}",
            report
                .errors
                .first()
                .map(|e| e.to_string())
                .unwrap_or_default()
        ));
    }
    let metrics = Metrics::compute(&instance, &log, alpha);

    let mut out = String::new();
    let _ = writeln!(out, "algorithm      : {name}");
    let _ = writeln!(
        out,
        "jobs           : {} ({} completed, {} rejected)",
        instance.len(),
        metrics.flow.completed,
        metrics.flow.rejected
    );
    let _ = writeln!(out, "flow (served)  : {:.3}", metrics.flow.flow_served);
    let _ = writeln!(out, "flow (all)     : {:.3}", metrics.flow.flow_all);
    let _ = writeln!(
        out,
        "weighted flow  : {:.3}",
        metrics.flow.weighted_flow_served
    );
    let _ = writeln!(out, "energy (α={alpha}) : {:.3}", metrics.energy.total());
    let _ = writeln!(out, "makespan       : {:.3}", metrics.flow.makespan);
    let _ = writeln!(
        out,
        "rejected frac  : {:.4} (weight {:.4})",
        metrics.flow.rejected_fraction(),
        metrics.flow.rejected_weight_fraction()
    );
    if !capacity.is_empty() {
        let lost = log
            .rejections()
            .filter(|(_, r)| r.reason == osr_model::RejectReason::MachineLost)
            .count();
        let _ = writeln!(
            out,
            "capacity       : {} events, {} redispatches, {} machine-lost",
            capacity.len(),
            log.total_redispatches(),
            lost
        );
    }
    if let Some(d) = dual {
        let lb = flow_lower_bound(&instance, Some(d));
        let _ = writeln!(
            out,
            "certified LB   : {:.3} → ratio ≤ {:.3}",
            lb.value,
            metrics.flow.flow_all / lb.value
        );
    }
    if args.flag("gantt") {
        let _ = writeln!(out, "\n{}", render_gantt(&instance, &log, 78));
    }
    if let Some(path) = args.opt("log") {
        fs::write(path, io::log_to_string(&log)).map_err(|e| format!("writing {path}: {e}"))?;
        let _ = writeln!(out, "log written to {path}");
    }
    Ok(CmdOutput {
        stdout: out,
        notices,
    })
}

/// `osr validate` — validate a schedule log against its instance.
pub fn cmd_validate(args: &Args) -> Result<String, String> {
    let instance = load_instance(args)?;
    let log_path = args.require("log")?;
    let text = fs::read_to_string(log_path).map_err(|e| format!("reading {log_path}: {e}"))?;
    let log = io::log_from_str(&text).map_err(|e| format!("{log_path}: {e}"))?;
    let config = match args.opt("model") {
        Some("flowtime") | None => ValidationConfig::flow_time(),
        Some("flowenergy") => ValidationConfig::flow_energy(),
        Some("energy") => ValidationConfig::energy(),
        Some(other) => return Err(format!("unknown model `{other}`")),
    };
    let config = config.with_capacity(load_capacity(args, instance.machines())?);
    let report = validate_log(&instance, &log, &config);
    if report.is_valid() {
        Ok(format!(
            "VALID — {} completed, {} rejected, all invariants hold\n",
            report.completed, report.rejected
        ))
    } else {
        let mut out = format!("INVALID — {} violation(s):\n", report.errors.len());
        for e in report.errors.iter().take(10) {
            let _ = writeln!(out, "  - {e}");
        }
        Err(out)
    }
}

/// `osr compare` — run the standard policy lineup on one instance.
pub fn cmd_compare(args: &Args) -> Result<String, String> {
    let instance = load_instance(args)?;
    if instance.kind() == InstanceKind::Energy {
        return Err(
            "compare runs flow-time policies; energy instances need `osr run --algo energymin:A`"
                .into(),
        );
    }
    let eps: f64 = args.opt_parse("eps", 0.25)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>12} {:>12} {:>9} {:>9}",
        "policy", "flow(served)", "flow(all)", "rejected", "ratio/LB"
    );

    // Certified LB from the paper's algorithm.
    let flow_out = FlowScheduler::new(FlowParams::new(eps))?.run(&instance);
    let lb = flow_lower_bound(&instance, Some(flow_out.dual.objective())).value;

    let specs = [
        format!("flow:{eps}"),
        "greedy:spt".to_string(),
        "greedy:fifo".to_string(),
        format!("speedaug:{eps}:{eps}"),
    ];
    for spec in &specs {
        let (log, name, speeds_vary, _) = run_algo(
            spec,
            &instance,
            BackendOpts::default(),
            &CapacityPlan::empty(),
        )?;
        let report = validate_log(&instance, &log, &config_for(&instance, speeds_vary));
        if !report.is_valid() {
            return Err(format!("{name}: invalid schedule"));
        }
        let m = Metrics::compute(&instance, &log, 2.0);
        let _ = writeln!(
            out,
            "{:<28} {:>12.2} {:>12.2} {:>9} {:>9.3}",
            name,
            m.flow.flow_served,
            m.flow.flow_all,
            m.flow.rejected,
            m.flow.flow_all / lb
        );
    }
    let _ = writeln!(out, "\ncertified lower bound on OPT: {lb:.2}");
    Ok(out)
}

/// `osr bounds` — print the paper's bounds for given parameters.
pub fn cmd_bounds(args: &Args) -> Result<String, String> {
    let eps: f64 = args.opt_parse("eps", 0.25)?;
    let alpha: f64 = args.opt_parse("alpha", 2.0)?;
    let mut out = String::new();
    let _ = writeln!(out, "parameters: eps = {eps}, alpha = {alpha}\n");
    let _ = writeln!(out, "Theorem 1 (flow-time):");
    let _ = writeln!(
        out,
        "  competitive ratio ≤ {:.3}",
        bounds::flowtime_competitive_bound(eps)
    );
    let _ = writeln!(
        out,
        "  rejected jobs     ≤ {:.3} · n",
        bounds::flowtime_rejection_budget(eps)
    );
    let _ = writeln!(out, "Theorem 2 (weighted flow + energy):");
    let _ = writeln!(
        out,
        "  competitive ratio ≤ {:.3}",
        bounds::energyflow_competitive_bound(eps, alpha)
    );
    let _ = writeln!(out, "  rejected weight   ≤ {eps:.3} · W");
    let _ = writeln!(out, "Theorem 3 (energy with deadlines):");
    let _ = writeln!(
        out,
        "  competitive ratio ≤ α^α = {:.3}",
        bounds::energymin_competitive_bound(alpha)
    );
    let _ = writeln!(
        out,
        "Lemma 2 lower bound: ≥ (α/9)^α = {:.5}",
        bounds::energymin_lower_bound(alpha)
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from), FLAGS).unwrap()
    }

    #[test]
    fn gen_to_stdout_produces_parseable_instance() {
        let out = cmd_gen(&args("gen --kind flowtime --n 20 --machines 2 --seed 5")).unwrap();
        let inst = io::instance_from_str(&out).unwrap();
        assert_eq!(inst.len(), 20);
        assert_eq!(inst.machines(), 2);
    }

    #[test]
    fn gen_energy_kind_has_deadlines() {
        let out = cmd_gen(&args(
            "gen --kind energy --n 10 --machines 1 --slack 1.5:2.5",
        ))
        .unwrap();
        let inst = io::instance_from_str(&out).unwrap();
        assert!(inst.jobs().iter().all(|j| j.deadline.is_some()));
    }

    #[test]
    fn gen_rejects_bad_specs() {
        assert!(cmd_gen(&args("gen --kind nope")).is_err());
        assert!(cmd_gen(&args("gen --sizes wat:1")).is_err());
        assert!(cmd_gen(&args("gen --arrivals poisson")).is_err());
        assert!(cmd_gen(&args("gen --machine-model related")).is_err());
        assert!(cmd_gen(&args("gen --scenario warp-pareto-identical")).is_err());
        // Out-of-range values for the new tokens are errors, not the
        // generator's asserts.
        assert!(cmd_gen(&args("gen --arrivals mmpp:0:5:5")).is_err());
        assert!(cmd_gen(&args("gen --arrivals mmpp:4:0.5:5")).is_err());
        assert!(cmd_gen(&args("gen --arrivals mmpp:4:5:-1")).is_err());
        assert!(cmd_gen(&args("gen --machine-model affinity:0:0.1")).is_err());
        assert!(cmd_gen(&args("gen --machine-model affinity:2:1.5")).is_err());
    }

    #[test]
    fn gen_scenario_resolves_named_grid_points() {
        let out = cmd_gen(&args(
            "gen --scenario mmpp-pareto-affinity --n 200 --machines 8 --seed 3",
        ))
        .unwrap();
        let inst = io::instance_from_str(&out).unwrap();
        assert_eq!(inst.len(), 200);
        assert_eq!(inst.machines(), 8);
        // Affinity restricts eligibility; the restriction must survive
        // serialization (`inf` entries).
        assert!(inst
            .jobs()
            .iter()
            .any(|j| j.sizes.iter().any(|p| !p.is_finite())));
        // Same scenario, same seed → identical output text.
        let again = cmd_gen(&args(
            "gen --scenario mmpp-pareto-affinity --n 200 --machines 8 --seed 3",
        ))
        .unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn gen_scenario_axis_overrides_apply() {
        // --machine-model beats the scenario's machine token: no inf
        // entries survive when overridden to identical.
        let out = cmd_gen(&args(
            "gen --scenario poisson-uniform-restricted --machine-model identical --n 50 --machines 4",
        ))
        .unwrap();
        let inst = io::instance_from_str(&out).unwrap();
        assert!(inst
            .jobs()
            .iter()
            .all(|j| j.sizes.iter().all(|p| p.is_finite())));
    }

    #[test]
    fn gen_new_spec_tokens_parse() {
        let out = cmd_gen(&args(
            "gen --arrivals mmpp:4:16:20 --machine-model affinity:2:0 --n 40 --machines 4",
        ))
        .unwrap();
        let inst = io::instance_from_str(&out).unwrap();
        assert_eq!(inst.len(), 40);
        // drop_prob 0 → every job eligible somewhere, but only within
        // its rack (2 of 4 machines).
        for j in inst.jobs() {
            assert_eq!(j.sizes.iter().filter(|p| p.is_finite()).count(), 2);
        }
    }

    #[test]
    fn run_and_validate_round_trip_through_files() {
        let dir = std::env::temp_dir().join(format!("osr-cli-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        let log_path = dir.join("log.csv");

        let text = cmd_gen(&args("gen --kind flowtime --n 30 --machines 2 --seed 9")).unwrap();
        fs::write(&inst_path, text).unwrap();

        let run_out = cmd_run(&args(&format!(
            "run --algo flow:0.25 --input {} --log {}",
            inst_path.display(),
            log_path.display()
        )))
        .unwrap();
        assert!(run_out.stdout.contains("certified LB"));
        assert!(run_out.stdout.contains("log written"));

        let val_out = cmd_validate(&args(&format!(
            "validate --input {} --log {} --model flowtime",
            inst_path.display(),
            log_path.display()
        )))
        .unwrap();
        assert!(val_out.starts_with("VALID"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_lists_all_policies() {
        let dir = std::env::temp_dir().join(format!("osr-cli-cmp-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        let text = cmd_gen(&args("gen --kind flowtime --n 40 --machines 2 --seed 3")).unwrap();
        fs::write(&inst_path, text).unwrap();
        let out = cmd_compare(&args(&format!(
            "compare --input {} --eps 0.3",
            inst_path.display()
        )))
        .unwrap();
        assert!(out.contains("spaa18-flow"));
        assert!(out.contains("greedy"));
        assert!(out.contains("esa16-speedaug"));
        assert!(out.contains("certified lower bound"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_refuses_energy_instances() {
        let dir = std::env::temp_dir().join(format!("osr-cli-cmpe-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        let text = cmd_gen(&args("gen --kind energy --n 5 --machines 1")).unwrap();
        fs::write(&inst_path, text).unwrap();
        let err = cmd_compare(&args(&format!("compare --input {}", inst_path.display())));
        assert!(err.is_err());
        assert!(err.unwrap_err().contains("energymin"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_from_trace_imports_rows() {
        let dir = std::env::temp_dir().join(format!("osr-cli-trace-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("jobs.trace");
        fs::write(&trace_path, "# release size weight\n0 2 5\n1 3 1\n").unwrap();
        let out = cmd_gen(&args(&format!(
            "gen --from-trace {} --machines 2 --machine-model unrelated:1:3",
            trace_path.display()
        )))
        .unwrap();
        let inst = io::instance_from_str(&out).unwrap();
        assert_eq!(inst.len(), 2);
        assert_eq!(inst.machines(), 2);
        assert_eq!(inst.jobs()[0].weight, 5.0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bounds_prints_all_theorems() {
        let out = cmd_bounds(&args("bounds --eps 0.5 --alpha 3")).unwrap();
        assert!(out.contains("Theorem 1"));
        assert!(out.contains("18.000")); // 2(1.5/0.5)² = 18
        assert!(out.contains("27.000")); // 3³
        assert!(out.contains("Lemma 2"));
    }

    #[test]
    fn dispatch_routes_and_help_works() {
        let help = dispatch(&args("help")).unwrap().stdout;
        assert!(help.contains("USAGE"));
        assert!(help.contains("osr serve"));
        assert!(help.contains("osr top"));
        // The runtime-knob section is generated from the shared table.
        for k in &osr_core::KNOBS {
            assert!(help.contains(k.flag), "help misses {}", k.flag);
        }
        // So is the serve-durability section.
        assert!(help.contains("SERVE DURABILITY"), "{help}");
        for k in &osr_core::SERVE_KNOBS {
            assert!(help.contains(k.flag), "help misses {}", k.flag);
        }
        assert!(dispatch(&args("nonsense")).is_err());
        assert!(dispatch(&args("bounds")).is_ok());
    }

    #[test]
    fn run_energymin_on_energy_instance() {
        let dir = std::env::temp_dir().join(format!("osr-cli-em-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        let text = cmd_gen(&args("gen --kind energy --n 15 --machines 1 --seed 2")).unwrap();
        fs::write(&inst_path, text).unwrap();
        let out = cmd_run(&args(&format!(
            "run --algo energymin:2.0 --input {} --alpha 2.0",
            inst_path.display()
        )))
        .unwrap();
        assert!(out.stdout.contains("0 rejected"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_backend_options_select_and_agree() {
        let dir = std::env::temp_dir().join(format!("osr-cli-bk-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        // ≥ PRUNED_MIN_MACHINES machines so `--dispatch-index pruned`
        // actually engages the tournament index (a smaller m would test
        // the linear fallback against itself).
        let text = cmd_gen(&args("gen --kind flowtime --n 80 --machines 12 --seed 11")).unwrap();
        fs::write(&inst_path, text).unwrap();
        // Every backend combination must run and report identical
        // schedules (they are all exact implementations of the same
        // algorithm).
        let mut outs = Vec::new();
        for extra in [
            "",
            "--queue-backend naive",
            "--event-backend pairing",
            "--dispatch-index linear",
            "--propagation eager",
            "--kernels scalar",
            "--queue-backend treap --event-backend binary --dispatch-index pruned --propagation lazy",
        ] {
            let out = cmd_run(&args(&format!(
                "run --algo flow:0.25 --input {} {extra}",
                inst_path.display()
            )))
            .unwrap();
            outs.push(out);
        }
        for o in &outs[1..] {
            assert_eq!(o, &outs[0], "backend choice changed the schedule report");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_shard_counts_agree_with_serial_loop() {
        let dir = std::env::temp_dir().join(format!("osr-cli-shag-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        // > 64 machines so a shard count of 2 actually splits the pool
        // into two rack shards instead of collapsing to the serial loop.
        let text = cmd_gen(&args("gen --kind flowtime --n 60 --machines 80 --seed 7")).unwrap();
        fs::write(&inst_path, text).unwrap();
        for algo in ["flow:0.25", "wflow:0.25", "energyflow:0.5:3.0"] {
            let mut outs = Vec::new();
            for extra in ["--shards 1", "--shards 2", "--shards 4"] {
                let out = cmd_run(&args(&format!(
                    "run --algo {algo} --input {} {extra}",
                    inst_path.display()
                )))
                .unwrap();
                outs.push(out);
            }
            for o in &outs[1..] {
                assert_eq!(
                    o, &outs[0],
                    "{algo}: shard count changed the schedule report"
                );
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_backend_options_report_bad_values_and_misuse() {
        let dir = std::env::temp_dir().join(format!("osr-cli-bkerr-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        let text = cmd_gen(&args("gen --kind flowtime --n 10 --machines 2 --seed 1")).unwrap();
        fs::write(&inst_path, text).unwrap();
        let run = |extra: &str| {
            cmd_run(&args(&format!(
                "run --algo flow:0.25 --input {} {extra}",
                inst_path.display()
            )))
        };
        for (extra, needle) in [
            ("--queue-backend quantum", "--queue-backend"),
            ("--event-backend fibonacci", "--event-backend"),
            ("--dispatch-index psychic", "--dispatch-index"),
            ("--propagation clairvoyant", "--propagation"),
            ("--kernels quantum", "--kernels"),
            ("--shards zero", "--shards"),
            ("--shards 0", "--shards"),
        ] {
            let err = run(extra).unwrap_err();
            assert!(err.contains(needle), "{extra}: {err}");
        }
        // Options that an algorithm cannot honor are an error, not a
        // silent no-op.
        let err = cmd_run(&args(&format!(
            "run --algo greedy:spt --input {} --dispatch-index linear",
            inst_path.display()
        )))
        .unwrap_err();
        assert!(err.contains("do not apply"), "{err}");
        let err = cmd_run(&args(&format!(
            "run --algo energymin:2.0 --input {} --shards 4",
            inst_path.display()
        )))
        .unwrap_err();
        assert!(err.contains("do not apply"), "{err}");
        let err = cmd_run(&args(&format!(
            "run --algo wflow:0.25 --input {} --queue-backend naive",
            inst_path.display()
        )))
        .unwrap_err();
        assert!(err.contains("--queue-backend"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_warns_when_requested_dispatch_index_is_ineffective() {
        let dir = std::env::temp_dir().join(format!("osr-cli-eff-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let small = dir.join("small.csv");
        let big = dir.join("big.csv");
        fs::write(
            &small,
            cmd_gen(&args("gen --kind flowtime --n 10 --machines 2 --seed 1")).unwrap(),
        )
        .unwrap();
        fs::write(
            &big,
            cmd_gen(&args("gen --kind flowtime --n 10 --machines 12 --seed 1")).unwrap(),
        )
        .unwrap();
        // m = 2 < PRUNED_MIN_MACHINES: an explicit pruned request falls
        // back to the linear scan and the run must say so — as a stderr
        // notice, never in the machine-readable stdout report.
        let out = cmd_run(&args(&format!(
            "run --algo flow:0.25 --input {} --dispatch-index pruned",
            small.display()
        )))
        .unwrap();
        let notice = out.notices.join("\n");
        assert!(notice.contains("ineffective"), "{notice}");
        assert!(notice.contains("linear scan ran"), "{notice}");
        assert!(!out.stdout.contains("note:"), "{}", out.stdout);
        assert!(!out.stdout.contains("ineffective"), "{}", out.stdout);
        // No notice when the request is honored (m >= crossover), when
        // linear is requested (always honored), or with no request.
        for (path, extra) in [
            (&big, "--dispatch-index pruned"),
            (&small, "--dispatch-index linear"),
            (&small, ""),
        ] {
            let out = cmd_run(&args(&format!(
                "run --algo flow:0.25 --input {} {extra}",
                path.display()
            )))
            .unwrap();
            assert!(out.notices.is_empty(), "{extra}: {:?}", out.notices);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_warns_when_requested_shards_are_ineffective() {
        let dir = std::env::temp_dir().join(format!("osr-cli-shards-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let small = dir.join("small.csv");
        let big = dir.join("big.csv");
        fs::write(
            &small,
            cmd_gen(&args("gen --kind flowtime --n 10 --machines 2 --seed 1")).unwrap(),
        )
        .unwrap();
        fs::write(
            &big,
            cmd_gen(&args("gen --kind flowtime --n 10 --machines 80 --seed 1")).unwrap(),
        )
        .unwrap();
        // m = 2 fits in one 64-machine rack, so any shard count collapses
        // to the serial loop and the run must say so — on stderr.
        let out = cmd_run(&args(&format!(
            "run --algo flow:0.25 --input {} --shards 4",
            small.display()
        )))
        .unwrap();
        let notice = out.notices.join("\n");
        assert!(notice.contains("ineffective"), "{notice}");
        assert!(notice.contains("serial loop ran"), "{notice}");
        assert!(!out.stdout.contains("ineffective"), "{}", out.stdout);
        // No notice when sharding engages (m > 64), when the serial loop
        // is requested explicitly, or with no request.
        for (path, extra) in [(&big, "--shards 2"), (&small, "--shards 1"), (&small, "")] {
            let out = cmd_run(&args(&format!(
                "run --algo flow:0.25 --input {} {extra}",
                path.display()
            )))
            .unwrap();
            assert!(out.notices.is_empty(), "{extra}: {:?}", out.notices);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_churn_writes_capacity_plan_and_run_replays_it() {
        let dir = std::env::temp_dir().join(format!("osr-cli-churn-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        let cap_path = dir.join("failures.csv");
        let script_path = dir.join("trace.script");

        // Churn via the scenario grammar's 4th segment; the plan goes
        // to --capacity-out as a replayable failure trace, and
        // --serve-script records the same run in the serve protocol.
        let gen_out = cmd_gen(&args(&format!(
            "gen --scenario poisson-uniform-identical-churn:0.5 --n 120 --machines 6 \
             --seed 7 --out {} --capacity-out {} --serve-script {}",
            inst_path.display(),
            cap_path.display(),
            script_path.display()
        )))
        .unwrap();
        assert!(gen_out.contains("capacity events"), "{gen_out}");
        assert!(gen_out.contains("serve replay script"), "{gen_out}");
        let plan_text = fs::read_to_string(&cap_path).unwrap();
        assert!(plan_text.starts_with("time,machine,kind"), "{plan_text}");
        let script = fs::read_to_string(&script_path).unwrap();
        assert!(script.contains("arrive 0 "), "{script}");
        assert!(
            script.contains("join") || script.contains("drain") || script.contains("crash"),
            "churn plan must appear in the script: {script}"
        );

        // The instance is byte-identical to the churn-free scenario —
        // churn draws from its own seed stream.
        let plain = cmd_gen(&args(
            "gen --scenario poisson-uniform-identical --n 120 --machines 6 --seed 7",
        ))
        .unwrap();
        assert_eq!(plain, fs::read_to_string(&inst_path).unwrap());

        // Replay through all three capacity-aware schedulers; the
        // incremental index must match the rebuild oracle bit for bit.
        for algo in ["flow:0.25", "wflow:0.25", "energyflow:0.25:2"] {
            let mut outs = Vec::new();
            for ci in ["incremental", "rebuild"] {
                let out = cmd_run(&args(&format!(
                    "run --algo {algo} --input {} --capacity {} --capacity-index {ci}",
                    inst_path.display(),
                    cap_path.display()
                )))
                .unwrap();
                assert!(
                    out.stdout.contains("capacity       :"),
                    "{algo}: {}",
                    out.stdout
                );
                outs.push(out);
            }
            assert_eq!(
                outs[0], outs[1],
                "{algo}: capacity-index mode changed the run"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_checks_capacity_windows() {
        let dir = std::env::temp_dir().join(format!("osr-cli-capval-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        let cap_path = dir.join("failures.csv");
        let log_path = dir.join("log.csv");
        fs::write(
            &inst_path,
            cmd_gen(&args("gen --kind flowtime --n 60 --machines 4 --seed 13")).unwrap(),
        )
        .unwrap();
        fs::write(&cap_path, "time,machine,kind\n2.0,1,crash\n5.0,1,join\n").unwrap();
        cmd_run(&args(&format!(
            "run --algo flow:0.25 --input {} --capacity {} --log {}",
            inst_path.display(),
            cap_path.display(),
            log_path.display()
        )))
        .unwrap();
        let out = cmd_validate(&args(&format!(
            "validate --input {} --log {} --capacity {}",
            inst_path.display(),
            log_path.display(),
            cap_path.display()
        )))
        .unwrap();
        assert!(out.starts_with("VALID"), "{out}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn capacity_misuse_is_an_error() {
        let dir = std::env::temp_dir().join(format!("osr-cli-caperr-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        let cap_path = dir.join("failures.csv");
        fs::write(
            &inst_path,
            cmd_gen(&args("gen --kind flowtime --n 10 --machines 2 --seed 1")).unwrap(),
        )
        .unwrap();
        fs::write(&cap_path, "1.0,1,crash\n").unwrap();
        // Capacity-blind schedulers refuse a plan.
        let err = cmd_run(&args(&format!(
            "run --algo greedy:spt --input {} --capacity {}",
            inst_path.display(),
            cap_path.display()
        )))
        .unwrap_err();
        assert!(err.contains("--capacity does not apply"), "{err}");
        // Out-of-range machine ids are caught before the run.
        fs::write(&cap_path, "1.0,9,crash\n").unwrap();
        let err = cmd_run(&args(&format!(
            "run --algo flow:0.25 --input {} --capacity {}",
            inst_path.display(),
            cap_path.display()
        )))
        .unwrap_err();
        assert!(err.contains("machine 9"), "{err}");
        // Bad --capacity-index values and churn/capacity-out misuse.
        let err = cmd_run(&args(&format!(
            "run --algo flow:0.25 --input {} --capacity-index psychic",
            inst_path.display()
        )))
        .unwrap_err();
        assert!(err.contains("--capacity-index"), "{err}");
        assert!(cmd_gen(&args("gen --n 10 --machines 2 --churn 0.5")).is_err());
        assert!(cmd_gen(&args(
            "gen --n 10 --machines 2 --churn -1 --capacity-out /tmp/x"
        ))
        .is_err());
        assert!(cmd_gen(&args("gen --n 10 --machines 2 --capacity-out /tmp/x")).is_err());
        assert!(cmd_gen(&args(
            "gen --kind energy --n 10 --machines 2 --churn 0.5 --capacity-out /tmp/x"
        ))
        .is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_rejects_unknown_algo() {
        let dir = std::env::temp_dir().join(format!("osr-cli-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let inst_path = dir.join("inst.csv");
        let text = cmd_gen(&args("gen --n 5 --machines 1")).unwrap();
        fs::write(&inst_path, text).unwrap();
        let err = cmd_run(&args(&format!(
            "run --algo quantum:1 --input {}",
            inst_path.display()
        )));
        assert!(err.is_err());
        fs::remove_dir_all(&dir).ok();
    }
}
