//! Minimal hand-rolled argument parser (no external CLI crates in the
//! offline dependency set).
//!
//! Grammar: `osr <subcommand> [positional…] [--key value]… [--flag]…`.
//! An option is a `--name` followed by a non-`--` token; a flag is a
//! `--name` followed by another `--` token or the end of input. Flags
//! must therefore be listed in [`Args::parse`]'s `known_flags` so the
//! parser can disambiguate.

use std::collections::{HashMap, HashSet};

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Positional arguments (subcommand first).
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    flags: HashSet<String>,
}

impl Args {
    /// Parses tokens. `known_flags` lists the `--names` that take no
    /// value.
    pub fn parse<I: IntoIterator<Item = String>>(
        tokens: I,
        known_flags: &[&str],
    ) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if name.is_empty() {
                    return Err("empty option name `--`".into());
                }
                if known_flags.contains(&name) {
                    out.flags.insert(name.to_string());
                    continue;
                }
                match iter.next() {
                    Some(v) if !v.starts_with("--") => {
                        if out.options.insert(name.to_string(), v).is_some() {
                            return Err(format!("option --{name} given twice"));
                        }
                    }
                    _ => return Err(format!("option --{name} needs a value")),
                }
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// The subcommand (first positional), if present.
    pub fn subcommand(&self) -> Option<&str> {
        self.positional.first().map(String::as_str)
    }

    /// Optional option value.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Required option value.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.opt(name)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    /// Option parsed as `T`, with a default.
    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.opt(name) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("bad value `{v}` for --{name}")),
        }
    }

    /// Whether a flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }
}

/// Splits a `name:a:b:c` spec into its head and numeric tail.
pub fn split_spec(spec: &str) -> (String, Vec<f64>) {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or("").to_string();
    let nums = parts.filter_map(|p| p.parse::<f64>().ok()).collect();
    (head, nums)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str, flags: &[&str]) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from), flags)
    }

    #[test]
    fn positionals_options_flags() {
        let a = parse("run --eps 0.25 --gantt -", &["gantt"]).unwrap();
        assert_eq!(a.subcommand(), Some("run"));
        assert_eq!(a.opt("eps"), Some("0.25"));
        assert!(a.flag("gantt"));
        assert_eq!(a.positional, vec!["run", "-"]);
    }

    #[test]
    fn missing_value_detected() {
        assert!(parse("run --eps", &[]).is_err());
        assert!(parse("run --eps --gantt", &["gantt"]).is_err());
    }

    #[test]
    fn duplicate_option_rejected() {
        assert!(parse("run --eps 1 --eps 2", &[]).is_err());
    }

    #[test]
    fn opt_parse_with_default() {
        let a = parse("gen --n 50", &[]).unwrap();
        assert_eq!(a.opt_parse("n", 10usize).unwrap(), 50);
        assert_eq!(a.opt_parse("machines", 4usize).unwrap(), 4);
        assert!(a.opt_parse::<usize>("n", 0).is_ok());
        let b = parse("gen --n abc", &[]).unwrap();
        assert!(b.opt_parse::<usize>("n", 0).is_err());
    }

    #[test]
    fn require_reports_name() {
        let a = parse("gen", &[]).unwrap();
        let err = a.require("out").unwrap_err();
        assert!(err.contains("--out"));
    }

    #[test]
    fn split_spec_parses_tail() {
        let (head, nums) = split_spec("pareto:1.5:1:100");
        assert_eq!(head, "pareto");
        assert_eq!(nums, vec![1.5, 1.0, 100.0]);
        let (head, nums) = split_spec("unit");
        assert_eq!(head, "unit");
        assert!(nums.is_empty());
    }
}
