//! `osr serve` and `osr top` — the streaming ingest loop and its live
//! ops TUI.
//!
//! `serve` runs a scheduler as a long-lived process on top of
//! [`osr_core::ServeSession`]: producers push job arrivals and
//! capacity events as protocol lines (stdin, and optionally a unix
//! socket), the session dispatches them online, and when the stream
//! ends stdout carries **exactly** the finished schedule log — so a
//! replayed trace (see `osr_workload::serve_script`) pipes through
//! `serve` to bytes identical to the offline `osr run` over the same
//! instance. Everything interactive (stats blocks, per-line errors)
//! goes to stderr or the socket, never stdout.
//!
//! The protocol is line-oriented and time-ordered (the session
//! enforces a monotone high-water clock):
//!
//! ```text
//! arrive <id> [@T] [w=W] <size>...   # one size per machine; inf = ineligible
//! join|drain|crash <machine> [@T]    # pool membership change
//! advance <T>                        # fire completions up to T
//! stats                              # key/value snapshot, ends with `end`
//! shutdown                           # finish the stream
//! ```
//!
//! Omitted `@T` default to the last event's time; `<id>` must be the
//! next dense job id (a cheap end-to-end check that producer and
//! server agree on the stream position).
//!
//! `top` is the other side of the socket: it polls `stats` and renders
//! an ANSI frame — queue depths, flow-time percentiles, reject counts
//! by reason, redispatch totals, and dispatch-index stats — with no
//! dependency beyond a VT100 terminal.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write as _};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use osr_core::energyflow::EnergyFlowParams;
use osr_core::flowtime::WeightedFlowParams;
use osr_core::{
    Arrival, EnergyFlowSession, FlowParams, FlowSession, JournaledSession, ServeSession,
    WeightedFlowSession,
};
use osr_model::{io as model_io, FinishedLog};
use osr_sim::failpoint;
use osr_sim::CapacityChange;

use crate::args::{split_spec, Args};
use crate::commands::{ineffective_knob_notices, usage, BackendOpts, CmdOutput};

/// Builds the serve session for an `--algo` spec. Only the three
/// capacity-aware schedulers have a streaming mode (deadline-based
/// `energymin` fixes strategies at arrival against a known future and
/// the baselines are offline constructions).
fn build_session(
    spec: &str,
    machines: usize,
    offline: &[usize],
    opts: &BackendOpts,
) -> Result<Box<dyn ServeSession>, String> {
    opts.apply_propagation();
    let (head, v) = split_spec(spec);
    match (head.as_str(), v.as_slice()) {
        ("flow", [eps]) => {
            let mut params = FlowParams::new(*eps);
            opts.apply_to(&mut params.config);
            Ok(Box::new(FlowSession::with_offline(
                params, machines, offline,
            )?))
        }
        ("wflow", [eps]) => {
            opts.reject_unsupported(spec, false, true)?;
            let mut params = WeightedFlowParams::new(*eps);
            opts.apply_to(&mut params.config);
            Ok(Box::new(WeightedFlowSession::with_offline(
                params, machines, offline,
            )?))
        }
        ("energyflow", [eps, alpha]) => {
            opts.reject_unsupported(spec, false, true)?;
            let mut params = EnergyFlowParams::new(*eps, *alpha);
            opts.apply_to(&mut params.config);
            Ok(Box::new(EnergyFlowSession::with_offline(
                params, machines, offline,
            )?))
        }
        _ => Err(format!(
            "serve supports flow:EPS | wflow:EPS | energyflow:EPS:ALPHA, got `{spec}`\n\n{}",
            usage()
        )),
    }
}

/// Parses a `--offline` machine list (`1,3,7`).
fn parse_offline(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| {
            t.parse::<usize>()
                .map_err(|_| format!("bad machine id `{t}` in --offline (want e.g. 1,3,7)"))
        })
        .collect()
}

/// What a protocol line asks the server to do next.
enum Response {
    /// Processed; nothing to show (socket clients get `ok`).
    Quiet,
    /// A stats block to send back to the asking producer.
    Stats(String),
    /// End the stream and emit the finished log.
    Shutdown,
}

fn num(tok: &str, what: &str) -> Result<f64, String> {
    tok.parse::<f64>()
        .map_err(|_| format!("bad {what} `{tok}`"))
}

/// Parses and applies one protocol line against the session. `next_id`
/// and `last_t` are the stream cursor: the expected dense job id and
/// the default timestamp for lines that omit `@T`. Failed lines leave
/// the session untouched (the sessions validate before mutating).
fn handle_line(
    sess: &mut dyn ServeSession,
    next_id: &mut usize,
    last_t: &mut f64,
    line: &str,
) -> Result<Response, String> {
    let mut toks = line.split_whitespace();
    let Some(cmd) = toks.next() else {
        return Ok(Response::Quiet); // blank line
    };
    if cmd.starts_with('#') {
        return Ok(Response::Quiet);
    }
    match cmd {
        "arrive" => {
            let a = parse_arrive(toks, *next_id, *last_t)?;
            let release = a.release;
            sess.arrive(a.release, a.weight, a.sizes)?;
            *next_id += 1;
            *last_t = release;
            Ok(Response::Quiet)
        }
        "join" | "drain" | "crash" => {
            let change = match cmd {
                "join" => CapacityChange::Join,
                "drain" => CapacityChange::Drain,
                _ => CapacityChange::Crash,
            };
            let m_tok = toks
                .next()
                .ok_or_else(|| format!("{cmd} needs a machine"))?;
            let machine: usize = m_tok
                .parse()
                .map_err(|_| format!("bad machine `{m_tok}`"))?;
            let time = match toks.next() {
                Some(t) => num(t.strip_prefix('@').unwrap_or(t), "event time")?,
                None => *last_t,
            };
            sess.capacity(change, machine, time)?;
            *last_t = time;
            Ok(Response::Quiet)
        }
        "advance" => {
            let t_tok = toks.next().ok_or("advance needs a time")?;
            let time = num(t_tok.strip_prefix('@').unwrap_or(t_tok), "advance time")?;
            sess.advance(time)?;
            *last_t = time;
            Ok(Response::Quiet)
        }
        "stats" => Ok(Response::Stats(render_stats(sess))),
        "shutdown" => Ok(Response::Shutdown),
        other => Err(format!(
            "unknown serve command `{other}` (want arrive|join|drain|crash|advance|stats|shutdown)"
        )),
    }
}

/// Parse-only twin of [`handle_line`]'s `arrive` arm: validates the id
/// against the stream cursor and resolves defaulted operands without
/// touching the session. `toks` holds the operands after the `arrive`
/// keyword. Shared with the burst coalescer in [`serve_loop`], which
/// must parse a whole burst before ingesting any of it.
fn parse_arrive<'a>(
    toks: impl Iterator<Item = &'a str>,
    next_id: usize,
    last_t: f64,
) -> Result<Arrival, String> {
    let mut toks = toks;
    let id_tok = toks.next().ok_or("arrive needs a job id")?;
    let id: usize = id_tok
        .parse()
        .map_err(|_| format!("bad job id `{id_tok}`"))?;
    if id != next_id {
        return Err(format!(
            "arrive id {id} out of order (expected {next_id}; ids are dense)"
        ));
    }
    let mut release = last_t;
    let mut weight = 1.0;
    let mut sizes = Vec::new();
    for t in toks {
        if let Some(v) = t.strip_prefix('@') {
            release = num(v, "release time")?;
        } else if let Some(v) = t.strip_prefix("w=") {
            weight = num(v, "weight")?;
        } else {
            sizes.push(num(t, "size")?);
        }
    }
    Ok(Arrival {
        release,
        weight,
        sizes,
    })
}

/// Whether a protocol line is an `arrive` line (the only kind the
/// serve loop coalesces).
fn is_arrive(line: &str) -> bool {
    line.split_whitespace().next() == Some("arrive")
}

/// Applies a coalesced burst of `arrive` lines as **one** ingest epoch
/// (via [`ServeSession::arrive_batch`]), replying per line exactly as
/// the serial loop would.
///
/// Parsing mirrors serial processing: each line parses against the
/// running cursor, and a bad line leaves the cursor untouched — so a
/// later dense id fails the same way it would one-by-one. If the
/// session rejects the batch mid-way, the surviving prefix is
/// committed and every later batch entry is replayed through the
/// serial path, keeping replies and state line-for-line identical to
/// the uncoalesced loop.
/// Returns `Some(message)` when a failpoint's `error` action fired
/// inside the batch: the batch was neither journaled nor applied, and
/// the serve loop must shut down gracefully (flush + final log).
fn process_arrive_batch(
    sess: &mut dyn ServeSession,
    next_id: &mut usize,
    last_t: &mut f64,
    lines: Vec<(String, Option<Sender<String>>)>,
) -> Option<String> {
    enum Tag {
        Parsed(usize),
        Bad(String),
    }
    let mut batch: Vec<Arrival> = Vec::new();
    let mut tagged: Vec<(String, Option<Sender<String>>, Tag)> = Vec::new();
    let (mut tid, mut tt) = (*next_id, *last_t);
    for (line, reply) in lines {
        match parse_arrive(line.split_whitespace().skip(1), tid, tt) {
            Ok(a) => {
                tid += 1;
                tt = a.release;
                tagged.push((line, reply, Tag::Parsed(batch.len())));
                batch.push(a);
            }
            Err(e) => tagged.push((line, reply, Tag::Bad(e))),
        }
    }
    let releases: Vec<f64> = batch.iter().map(|a| a.release).collect();
    let (ok_count, fail) = match sess.arrive_batch(batch) {
        Ok(()) => (releases.len(), None),
        Err((k, e)) => (k, Some(e)),
    };
    *next_id += ok_count;
    if ok_count > 0 {
        *last_t = releases[ok_count - 1];
    }
    // An injected failure leaves the whole batch unapplied (and
    // un-journaled); answer every pending line with it instead of
    // replaying the tail, and hand it up as a shutdown request.
    let injected = fail
        .as_deref()
        .filter(|e| failpoint::is_failpoint_error(e))
        .map(str::to_string);
    let mut failed = fail;
    for (line, reply, tag) in tagged {
        let res = match tag {
            Tag::Bad(e) => Err(e),
            Tag::Parsed(i) if i < ok_count => Ok(()),
            Tag::Parsed(_) if injected.is_some() => Err(injected.clone().expect("checked is_some")),
            Tag::Parsed(i) if i == ok_count && failed.is_some() => {
                Err(failed.take().expect("checked is_some"))
            }
            // Batch entries past a mid-batch failure replay serially.
            Tag::Parsed(_) => handle_line(sess, next_id, last_t, &line).map(|_| ()),
        };
        match res {
            Ok(()) => {
                if let Some(tx) = reply {
                    let _ = tx.send("ok\n".into());
                }
            }
            Err(e) => match reply {
                Some(tx) => {
                    let _ = tx.send(format!("err {e}\n"));
                }
                None => eprintln!("serve: {e}"),
            },
        }
    }
    injected
}

/// Renders a [`osr_core::ServeSnapshot`] as the wire stats block: one
/// `key value` pair per line, terminated by `end`. Numbers use Rust's
/// shortest-round-trip formatting so `top` re-parses them exactly.
fn render_stats(sess: &dyn ServeSession) -> String {
    use std::fmt::Write as _;
    let s = sess.snapshot();
    let mut out = String::new();
    let _ = writeln!(out, "algo {}", sess.algorithm());
    let _ = writeln!(out, "now {}", s.now);
    let _ = writeln!(out, "machines {}", s.machines);
    let _ = writeln!(out, "online {}", s.online);
    let _ = writeln!(out, "shards {}", s.shards);
    let _ = writeln!(out, "arrived {}", s.arrived);
    let _ = writeln!(out, "queued {}", s.queued);
    let _ = writeln!(out, "running {}", s.running);
    let _ = writeln!(out, "completions_pending {}", s.completions_pending);
    let _ = writeln!(out, "completed {}", s.completed);
    let _ = writeln!(out, "rejected {}", s.rejected);
    let _ = writeln!(out, "rejected_rule1 {}", s.rejected_rule1);
    let _ = writeln!(out, "rejected_rule2 {}", s.rejected_rule2);
    let _ = writeln!(out, "rejected_immediate {}", s.rejected_immediate);
    let _ = writeln!(out, "rejected_ineligible {}", s.rejected_ineligible);
    let _ = writeln!(out, "rejected_machine_lost {}", s.rejected_machine_lost);
    let _ = writeln!(out, "rejected_other {}", s.rejected_other);
    let _ = writeln!(out, "redispatches {}", s.redispatches);
    let _ = writeln!(out, "flow_p50 {}", s.flow_p50);
    let _ = writeln!(out, "flow_p95 {}", s.flow_p95);
    let _ = writeln!(out, "flow_p99 {}", s.flow_p99);
    for (m, depth) in &s.machine_depths {
        let _ = writeln!(out, "load_{m} {depth}");
    }
    if let Some(ix) = s.index {
        let _ = writeln!(out, "index_flat {}", ix.flat_searches);
        let _ = writeln!(out, "index_sparse {}", ix.sparse_searches);
        let _ = writeln!(out, "index_heap {}", ix.heap_searches);
        let _ = writeln!(out, "index_dirty {}", ix.dirty_leaves);
        let _ = writeln!(out, "index_live {}", ix.live);
        let _ = writeln!(out, "index_tombstones {}", ix.tombstones);
    }
    out.push_str("end\n");
    out
}

/// Splices the overload-shed counter into a rendered stats block
/// (before the `end` terminator). The counter lives in the serve loop,
/// not the session — it counts socket lines the bounded ingest channel
/// refused, which the session never saw.
fn with_shed_line(block: String, shed: u64) -> String {
    let mut out = block;
    if out.ends_with("end\n") {
        out.truncate(out.len() - "end\n".len());
    }
    out.push_str(&format!("shed_overload {shed}\nend\n"));
    out
}

/// One message from a producer thread to the serve loop.
enum Inbound {
    /// A protocol line, with a reply channel for socket clients (`None`
    /// for stdin — its errors and stats print to stderr instead).
    Line(String, Option<Sender<String>>),
    /// The stdin stream ended.
    Eof,
}

/// Reads protocol lines from one accepted socket connection, routing
/// each through the serve loop and writing the reply back. Lines get
/// `ok`, `err <msg>`, or a multi-line stats block ending in `end`.
///
/// The ingest channel is bounded; when it is full, socket lines are
/// *shed* (an immediate `err overloaded` reply, counted in `shed`)
/// rather than queued without bound — stdin is the backpressured
/// producer, the socket is the load-shedding one.
#[cfg(unix)]
fn handle_conn(stream: UnixStream, tx: SyncSender<Inbound>, shed: Arc<AtomicU64>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        let (rtx, rrx) = mpsc::channel::<String>();
        match tx.try_send(Inbound::Line(line, Some(rtx))) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(_)) => {
                shed.fetch_add(1, Ordering::Relaxed);
                if writer.write_all(b"err overloaded\n").is_err() {
                    break;
                }
                continue;
            }
            Err(mpsc::TrySendError::Disconnected(_)) => break, // server shut down
        }
        let Ok(reply) = rrx.recv() else { break };
        if writer.write_all(reply.as_bytes()).is_err() {
            break;
        }
    }
}

/// The serve event loop: merges producer streams (an owned line reader
/// standing in for stdin, plus socket connections), applies each line
/// to the session in arrival order, and finishes the log when the
/// stream ends — via `shutdown`, or at reader EOF when `once` is set
/// or no socket keeps the server reachable.
///
/// `cursor` is the starting stream position (`(0, 0.0)` for a fresh
/// run; the recovered high-water mark after `--recover`). `buffer`
/// bounds the producer→consumer channel: stdin blocks when it is full
/// (backpressure), socket lines are shed with `err overloaded`.
///
/// A failpoint `error` action anywhere in line handling is a graceful
/// shutdown request: the loop stops ingesting and finishes exactly as
/// `shutdown` would, so the journal is flushed and the final log still
/// comes out.
fn serve_loop<R: BufRead + Send + 'static>(
    mut sess: Box<dyn ServeSession>,
    input: R,
    socket: Option<&Path>,
    once: bool,
    cursor: (usize, f64),
    buffer: usize,
) -> Result<FinishedLog, String> {
    let (tx, rx) = mpsc::sync_channel::<Inbound>(buffer.max(1));
    let shed = Arc::new(AtomicU64::new(0));

    let stdin_tx = tx.clone();
    std::thread::spawn(move || {
        for line in input.lines() {
            let Ok(line) = line else { break };
            // Blocking send on the bounded channel: stdin producers
            // are backpressured, never shed.
            if stdin_tx.send(Inbound::Line(line, None)).is_err() {
                return;
            }
        }
        let _ = stdin_tx.send(Inbound::Eof);
    });

    #[cfg(unix)]
    if let Some(path) = socket {
        let _ = std::fs::remove_file(path); // stale socket from a past run
        let listener =
            UnixListener::bind(path).map_err(|e| format!("binding {}: {e}", path.display()))?;
        let sock_tx = tx.clone();
        let sock_shed = Arc::clone(&shed);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let conn_tx = sock_tx.clone();
                let conn_shed = Arc::clone(&sock_shed);
                std::thread::spawn(move || handle_conn(stream, conn_tx, conn_shed));
            }
        });
    }
    #[cfg(not(unix))]
    if socket.is_some() {
        return Err("--socket needs unix domain sockets (unsupported on this platform)".into());
    }
    drop(tx);

    let has_socket = socket.is_some();
    let (mut next_id, mut last_t) = cursor;
    // Non-arrive messages drained while collecting a burst park here
    // and are processed before blocking on the channel again.
    let mut parked: VecDeque<Inbound> = VecDeque::new();
    loop {
        let msg = match parked.pop_front() {
            Some(m) => m,
            None => match rx.recv() {
                Ok(m) => m,
                Err(_) => break,
            },
        };
        match msg {
            Inbound::Eof => {
                if !has_socket && !once {
                    eprintln!("serve: stdin closed and no --socket to keep serving; finishing");
                }
                if once || !has_socket {
                    break;
                }
            }
            Inbound::Line(line, reply) => {
                if is_arrive(&line) {
                    // Coalesce the already-queued tail of an arrival
                    // burst into one ingest epoch. Result-neutral: the
                    // determinism contract makes the batched log
                    // byte-identical to per-line ingest, so this trades
                    // ingest overhead only.
                    let mut burst = vec![(line, reply)];
                    while let Ok(next) = rx.try_recv() {
                        match next {
                            Inbound::Line(l, r) if is_arrive(&l) => burst.push((l, r)),
                            other => {
                                parked.push_back(other);
                                break;
                            }
                        }
                    }
                    if let Some(e) =
                        process_arrive_batch(sess.as_mut(), &mut next_id, &mut last_t, burst)
                    {
                        eprintln!("serve: {e}; shutting down gracefully");
                        break;
                    }
                    continue;
                }
                match handle_line(sess.as_mut(), &mut next_id, &mut last_t, &line) {
                    Ok(Response::Quiet) => {
                        if let Some(tx) = reply {
                            let _ = tx.send("ok\n".into());
                        }
                    }
                    Ok(Response::Stats(block)) => {
                        let block = with_shed_line(block, shed.load(Ordering::Relaxed));
                        match reply {
                            Some(tx) => {
                                let _ = tx.send(block);
                            }
                            None => eprint!("{block}"),
                        }
                    }
                    Ok(Response::Shutdown) => {
                        if let Some(tx) = reply {
                            let _ = tx.send("ok\n".into());
                        }
                        break;
                    }
                    Err(e) if failpoint::is_failpoint_error(&e) => {
                        if let Some(tx) = reply {
                            let _ = tx.send(format!("err {e}\n"));
                        }
                        eprintln!("serve: {e}; shutting down gracefully");
                        break;
                    }
                    Err(e) => match reply {
                        Some(tx) => {
                            let _ = tx.send(format!("err {e}\n"));
                        }
                        None => eprintln!("serve: {e}"),
                    },
                }
            }
        }
    }
    if let Some(path) = socket {
        let _ = std::fs::remove_file(path);
    }
    sess.finish()
}

/// `osr serve` — run a scheduler as a long-lived arrival-ingesting
/// process. See the module docs for the protocol; stdout carries
/// exactly the final schedule log.
pub fn cmd_serve(args: &Args) -> Result<CmdOutput, String> {
    let spec = args.opt("algo").unwrap_or("flow:0.25");
    let machines_tok = args.require("machines")?;
    let machines: usize = machines_tok
        .parse()
        .map_err(|_| format!("bad --machines `{machines_tok}` (want a positive integer)"))?;
    let offline = match args.opt("offline") {
        Some(s) => parse_offline(s)?,
        None => Vec::new(),
    };
    let opts = BackendOpts::parse(args)?;
    let mut notices = ineffective_knob_notices(&opts, machines);
    let once = args.flag("once");
    let socket = args.opt("socket").map(PathBuf::from);

    let journal_path = args.opt("journal").map(PathBuf::from);
    let recover = args.flag("recover");
    if recover && journal_path.is_none() {
        return Err("--recover needs --journal PATH (the journal to replay)".into());
    }
    let snap_every = match args.opt("snap-every") {
        Some(s) => osr_core::parse_snap_every(s)?,
        None => 32,
    };
    let buffer = match args.opt("ingest-buffer") {
        Some(s) => osr_core::parse_ingest_buffer(s)?,
        None => 1024,
    };
    match args.opt("failpoint") {
        Some(fp) => failpoint::arm(fp)?,
        None => {
            failpoint::arm_from_env()?;
        }
    }

    let sess = build_session(spec, machines, &offline, &opts)?;
    let mut cursor = (0usize, 0.0f64);
    let sess: Box<dyn ServeSession> = match &journal_path {
        Some(path) => {
            let fp = osr_core::fingerprint(spec, machines, &offline);
            if recover {
                let (js, report, warnings) = JournaledSession::recover(sess, path, fp, snap_every)?;
                for w in warnings {
                    eprintln!("serve: {w}");
                }
                eprintln!(
                    "serve: recovered {} journaled event(s) from {} \
                     ({} torn record(s) dropped, {} deterministic rejection(s) replayed{}); \
                     resuming at id {} t={}",
                    report.records_replayed,
                    path.display(),
                    report.dropped_torn,
                    report.rejected_replays,
                    if report.snapshot_checked {
                        ", snapshot cursor verified"
                    } else {
                        ""
                    },
                    report.next_id,
                    report.clock
                );
                cursor = js.cursor();
                Box::new(js)
            } else {
                Box::new(JournaledSession::create(sess, path, fp, snap_every)?)
            }
        }
        None => sess,
    };
    let log = serve_loop(
        sess,
        BufReader::new(std::io::stdin()),
        socket.as_deref(),
        once,
        cursor,
        buffer,
    )?;
    let text = model_io::log_to_string(&log);
    if let Some(path) = args.opt("log") {
        std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
        notices.push(format!("log written to {path}"));
    }
    Ok(CmdOutput {
        stdout: text,
        notices,
    })
}

/// Connects to a serve socket, sends `stats`, and parses the reply
/// block into key/value pairs.
#[cfg(unix)]
fn fetch_stats(path: &Path) -> Result<BTreeMap<String, String>, String> {
    let mut stream = UnixStream::connect(path).map_err(|e| e.to_string())?;
    stream
        .write_all(b"stats\n")
        .map_err(|e| format!("sending stats: {e}"))?;
    let mut map = BTreeMap::new();
    for line in BufReader::new(stream).lines() {
        let line = line.map_err(|e| format!("reading stats: {e}"))?;
        if line == "end" {
            return Ok(map);
        }
        if let Some((k, v)) = line.split_once(' ') {
            map.insert(k.to_string(), v.to_string());
        }
    }
    Err("connection closed before `end`".into())
}

#[cfg(not(unix))]
fn fetch_stats(_path: &Path) -> Result<BTreeMap<String, String>, String> {
    Err("osr top needs unix domain sockets (unsupported on this platform)".into())
}

/// A labelled horizontal bar for the queue-depth gauges.
fn bar(value: usize, max: usize, width: usize) -> String {
    let filled = if max == 0 {
        0
    } else {
        (value * width).div_ceil(max).min(width)
    };
    let mut s = String::new();
    for _ in 0..filled {
        s.push('█');
    }
    for _ in filled..width {
        s.push('·');
    }
    s
}

/// Renders one TUI frame from a parsed stats block. Pure so the layout
/// is unit-testable; `cmd_top` adds the screen-clear prefix per poll.
fn render_frame(stats: &BTreeMap<String, String>) -> String {
    use std::fmt::Write as _;
    let get = |k: &str| stats.get(k).map(String::as_str).unwrap_or("0");
    let getn = |k: &str| get(k).parse::<usize>().unwrap_or(0);
    let getf = |k: &str| get(k).parse::<f64>().unwrap_or(0.0);

    let (queued, running, pending) = (getn("queued"), getn("running"), getn("completions_pending"));
    let max = queued.max(running).max(pending).max(1);
    const W: usize = 24;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "\x1b[1mosr top\x1b[0m — \x1b[36m{}\x1b[0m @ t={}   machines {}/{} online   {} shard(s)",
        get("algo"),
        get("now"),
        get("online"),
        get("machines"),
        get("shards"),
    );
    let _ = writeln!(
        out,
        "  arrived {:>8}   completed {:>8}   rejected {:>6}   redispatches {:>6}   shed {:>6}",
        get("arrived"),
        get("completed"),
        get("rejected"),
        get("redispatches"),
        get("shed_overload"),
    );
    let _ = writeln!(
        out,
        "  queued  \x1b[33m{}\x1b[0m {queued}",
        bar(queued, max, W)
    );
    let _ = writeln!(
        out,
        "  running \x1b[32m{}\x1b[0m {running}",
        bar(running, max, W)
    );
    let _ = writeln!(
        out,
        "  pending \x1b[35m{}\x1b[0m {pending}",
        bar(pending, max, W)
    );
    let _ = writeln!(
        out,
        "  flow    p50 {:.3}   p95 {:.3}   p99 {:.3}",
        getf("flow_p50"),
        getf("flow_p95"),
        getf("flow_p99"),
    );
    let _ = writeln!(
        out,
        "  rejects rule-1 {}  rule-2 {}  immediate {}  ineligible {}  machine-lost {}  other {}",
        get("rejected_rule1"),
        get("rejected_rule2"),
        get("rejected_immediate"),
        get("rejected_ineligible"),
        get("rejected_machine_lost"),
        get("rejected_other"),
    );
    // Per-machine load pane: the k deepest pending queues, deepest
    // first (ties to the lower machine id), scaled to the pane leader.
    let mut loads: Vec<(usize, usize)> = stats
        .iter()
        .filter_map(|(k, v)| {
            let m = k.strip_prefix("load_")?.parse::<usize>().ok()?;
            Some((m, v.parse::<usize>().ok()?))
        })
        .collect();
    if !loads.is_empty() {
        loads.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        const TOP_K: usize = 8;
        let shown = &loads[..loads.len().min(TOP_K)];
        let lmax = shown.first().map_or(1, |&(_, d)| d.max(1));
        let _ = writeln!(
            out,
            "  load    (top {} of {} machines by queue depth)",
            shown.len(),
            loads.len()
        );
        for &(m, d) in shown {
            let _ = writeln!(out, "    m{m:<6} \x1b[34m{}\x1b[0m {d}", bar(d, lmax, W));
        }
    }
    if stats.contains_key("index_flat") {
        let _ = writeln!(
            out,
            "  index   flat {}  sparse {}  heap {}  dirty {}  live {}  tombstones {}",
            get("index_flat"),
            get("index_sparse"),
            get("index_heap"),
            get("index_dirty"),
            get("index_live"),
            get("index_tombstones"),
        );
    } else {
        let _ = writeln!(out, "  index   (linear scan — no dispatch index live)");
    }
    out
}

/// The reconnect schedule for `osr top`: capped exponential backoff
/// (100 ms doubling to a 5 s ceiling) plus up to 25% deterministic
/// jitter keyed by the attempt number, so a fleet of `top`s pointed at
/// one recovering server does not reconnect in lockstep.
fn backoff_delay_ms(attempt: u32) -> u64 {
    let capped = (100u64 << attempt.min(6)).min(5000);
    // SplitMix64-style mix of the attempt index — deterministic (no
    // RNG dependency, reproducible in tests) but well spread.
    let mut x = (u64::from(attempt) + 1).wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    capped + x % (capped / 4 + 1)
}

/// `osr top` — poll a serve socket and render the live ops TUI.
/// `--frames 0` (the default) polls until the server goes away.
/// Transient connect/poll failures retry with capped exponential
/// backoff (`--retries`, default 10, counted per outage) and a
/// "reconnecting…" status line instead of killing the TUI.
pub fn cmd_top(args: &Args) -> Result<CmdOutput, String> {
    let path = args.require("socket")?;
    let frames: usize = args.opt_parse("frames", 0)?;
    let interval_ms: u64 = args.opt_parse("interval-ms", 500)?;
    let retries: u32 = args.opt_parse("retries", 10)?;

    let mut rendered = 0usize;
    let mut attempt = 0u32;
    loop {
        let stats = match fetch_stats(Path::new(path)) {
            Ok(s) => {
                attempt = 0; // outage over — reset the backoff clock
                s
            }
            Err(e) if attempt < retries => {
                let delay = backoff_delay_ms(attempt);
                attempt += 1;
                eprintln!("top: {e}; reconnecting in {delay} ms (attempt {attempt}/{retries})…");
                std::thread::sleep(Duration::from_millis(delay));
                continue;
            }
            Err(e) if rendered > 0 => {
                eprintln!("top: {e}; retries exhausted, server gone, exiting");
                break;
            }
            Err(e) => return Err(format!("connecting to {path}: {e}")),
        };
        // Clear + home, then the frame — written directly so each poll
        // shows live (the returned CmdOutput stays empty).
        print!("\x1b[2J\x1b[H{}", render_frame(&stats));
        let _ = std::io::stdout().flush();
        rendered += 1;
        if frames != 0 && rendered >= frames {
            break;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
    Ok(CmdOutput::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use osr_core::FlowScheduler;
    use osr_model::{Instance, InstanceKind, Job};
    use osr_sim::{CapacityEvent, CapacityPlan};
    use std::io::Cursor;

    fn jobs() -> Vec<Job> {
        vec![
            Job::weighted(0, 0.0, 1.0, vec![2.0, 4.0]),
            Job::weighted(1, 1.0, 2.0, vec![3.0, 1.0]),
            Job::weighted(2, 2.5, 1.0, vec![f64::INFINITY, f64::INFINITY]),
            Job::weighted(3, 4.0, 1.0, vec![1.5, 2.5]),
        ]
    }

    #[test]
    fn serve_loop_replays_a_script_byte_identically() {
        // Offline oracle: flow over the same jobs and capacity plan.
        let plan = CapacityPlan::new(vec![
            CapacityEvent {
                time: 1.0,
                machine: osr_model::MachineId(1),
                change: CapacityChange::Crash,
            },
            CapacityEvent {
                time: 3.0,
                machine: osr_model::MachineId(1),
                change: CapacityChange::Join,
            },
        ])
        .unwrap();
        let inst = Instance::new(2, jobs(), InstanceKind::FlowTime).unwrap();
        let offline = FlowScheduler::with_eps(0.5)
            .unwrap()
            .with_capacity(plan)
            .run(&inst);

        // The same events as a protocol script — capacity before
        // arrivals at equal instants, matching the offline batch loop —
        // plus chatter the loop must tolerate: comments, blank lines, a
        // stats poll, and invalid lines (an out-of-order id, a time
        // regression) that reject loudly without perturbing the stream.
        let script = "\
# replayed trace
arrive 0 @0 w=1 2 4

crash 1 @1
arrive 1 @1 w=2 3 1
arrive 7 @1.5 w=1 1 1
stats
arrive 2 @2.5 w=1 inf inf
join 1 @3
drain 0 @2
arrive 3 @4 w=1 1.5 2.5
shutdown
";
        let sess = Box::new(FlowSession::new(FlowParams::new(0.5), 2).unwrap());
        let log = serve_loop(
            sess,
            Cursor::new(script.to_string()),
            None,
            false,
            (0, 0.0),
            1024,
        )
        .unwrap();
        assert_eq!(
            model_io::log_to_string(&offline.log),
            model_io::log_to_string(&log)
        );
    }

    /// Deterministic maximal coalescing: group every run of consecutive
    /// `arrive` lines into one batch (what `serve_loop` converges to
    /// when producers outpace ingest) and compare against the serial
    /// line-at-a-time loop — cursors and final logs must be identical,
    /// bad lines included.
    #[test]
    fn coalesced_arrive_bursts_match_serial_lines() {
        let script = [
            "arrive 0 @0 w=1 2 4",
            "arrive 1 @1 w=2 3 1",
            "arrive 7 @1.5 w=1 1 1", // out-of-order id: rejected either way
            "arrive 2 @2.5 w=1 inf inf",
            "arrive 3 @x 1 1", // malformed release: rejected either way
            "drain 1 @3",
            "arrive 3 @4 w=1 1.5 2.5",
            "arrive 4 @3 w=1 1 1", // time regression: session-level reject
            "arrive 5 @5 w=1 2 2",
        ];
        let mut serial = FlowSession::new(FlowParams::new(0.5), 2).unwrap();
        let (mut sid, mut st) = (0usize, 0.0f64);
        for line in script {
            let _ = handle_line(&mut serial, &mut sid, &mut st, line);
        }

        let mut batched: Box<dyn ServeSession> =
            Box::new(FlowSession::new(FlowParams::new(0.5), 2).unwrap());
        let (mut bid, mut bt) = (0usize, 0.0f64);
        let mut burst: Vec<(String, Option<Sender<String>>)> = Vec::new();
        for line in script {
            if is_arrive(line) {
                burst.push((line.to_string(), None));
                continue;
            }
            process_arrive_batch(
                batched.as_mut(),
                &mut bid,
                &mut bt,
                std::mem::take(&mut burst),
            );
            handle_line(batched.as_mut(), &mut bid, &mut bt, line).unwrap();
        }
        process_arrive_batch(batched.as_mut(), &mut bid, &mut bt, burst);

        assert_eq!((sid, st), (bid, bt), "stream cursors diverged");
        assert_eq!(
            model_io::log_to_string(&Box::new(serial).finish().unwrap()),
            model_io::log_to_string(&batched.finish().unwrap()),
        );
    }

    /// The recorded `examples/serve` trace replays byte-identically to
    /// its committed offline oracle through the coalescing loop (CI
    /// repeats this end-to-end over the built binary for all three
    /// schedulers).
    #[test]
    fn recorded_trace_replays_byte_identically_under_coalescing() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/serve");
        let script = std::fs::read_to_string(root.join("trace.script")).unwrap();
        let oracle = std::fs::read_to_string(root.join("offline-flow-0.25.csv")).unwrap();
        let sess = Box::new(FlowSession::new(FlowParams::new(0.25), 6).unwrap());
        let log = serve_loop(sess, Cursor::new(script), None, true, (0, 0.0), 1024).unwrap();
        assert_eq!(model_io::log_to_string(&log), oracle);
    }

    #[test]
    fn serve_loop_finishes_at_eof_without_shutdown() {
        // `--once` semantics: EOF ends the stream; defaulted times and
        // weights apply (`arrive 0 1 1` = t=0, w=1).
        let sess = Box::new(FlowSession::new(FlowParams::new(0.5), 2).unwrap());
        let log = serve_loop(
            sess,
            Cursor::new("arrive 0 1 1\n".to_string()),
            None,
            true,
            (0, 0.0),
            1024,
        )
        .unwrap();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn protocol_lines_validate() {
        let mut sess = FlowSession::new(FlowParams::new(0.5), 2).unwrap();
        let (mut id, mut t) = (0usize, 0.0f64);
        let line =
            |s: &mut FlowSession, id: &mut usize, t: &mut f64, l: &str| handle_line(s, id, t, l);
        assert!(line(&mut sess, &mut id, &mut t, "arrive 0 @1 w=2 3 inf").is_ok());
        assert_eq!((id, t), (1, 1.0));
        // Unknown command, malformed numbers, missing operands.
        assert!(line(&mut sess, &mut id, &mut t, "explode").is_err());
        assert!(line(&mut sess, &mut id, &mut t, "arrive one @2 1 1").is_err());
        assert!(line(&mut sess, &mut id, &mut t, "arrive 1 @x 1 1").is_err());
        assert!(line(&mut sess, &mut id, &mut t, "join").is_err());
        assert!(line(&mut sess, &mut id, &mut t, "advance").is_err());
        // Defaulted capacity time = the last event time.
        assert!(line(&mut sess, &mut id, &mut t, "drain 1").is_ok());
        // Stats renders the wire block.
        match line(&mut sess, &mut id, &mut t, "stats").unwrap() {
            Response::Stats(block) => {
                assert!(block.contains("algo flow"), "{block}");
                assert!(block.contains("arrived 1"), "{block}");
                assert!(block.ends_with("end\n"), "{block}");
            }
            _ => panic!("stats must reply with a block"),
        }
        // Shutdown and comment/blank handling.
        assert!(matches!(
            line(&mut sess, &mut id, &mut t, "shutdown").unwrap(),
            Response::Shutdown
        ));
        assert!(matches!(
            line(&mut sess, &mut id, &mut t, "# note").unwrap(),
            Response::Quiet
        ));
    }

    #[test]
    fn offline_lists_parse() {
        assert_eq!(parse_offline("1,3,7").unwrap(), vec![1, 3, 7]);
        assert_eq!(parse_offline(" 2 , 4 ").unwrap(), vec![2, 4]);
        assert!(parse_offline("1,x").is_err());
    }

    #[test]
    fn render_frame_shows_key_stats() {
        let mut map = BTreeMap::new();
        for (k, v) in [
            ("algo", "flow"),
            ("now", "12.5"),
            ("machines", "8"),
            ("online", "7"),
            ("shards", "1"),
            ("arrived", "100"),
            ("queued", "3"),
            ("running", "5"),
            ("completions_pending", "2"),
            ("completed", "88"),
            ("rejected", "4"),
            ("rejected_rule1", "2"),
            ("rejected_ineligible", "1"),
            ("redispatches", "6"),
            ("flow_p50", "1.25"),
            ("flow_p95", "3.5"),
            ("flow_p99", "4.2"),
            ("index_flat", "120"),
            ("index_live", "7"),
        ] {
            map.insert(k.to_string(), v.to_string());
        }
        let frame = render_frame(&map);
        assert!(frame.contains("flow"), "{frame}");
        assert!(frame.contains("7/8 online"), "{frame}");
        assert!(frame.contains("p95 3.500"), "{frame}");
        assert!(frame.contains("rule-1 2"), "{frame}");
        assert!(frame.contains("flat 120"), "{frame}");
        assert!(frame.contains('█'), "{frame}");
        // No load_* keys — no load pane.
        assert!(!frame.contains("load"), "{frame}");
        // Without index keys the frame says the linear scan ran.
        map.remove("index_flat");
        assert!(render_frame(&map).contains("linear scan"), "no-index frame");
    }

    #[test]
    fn load_pane_shows_top_k_machines_deepest_first() {
        let mut map = BTreeMap::new();
        map.insert("algo".to_string(), "flow".to_string());
        for m in 0..12 {
            // Depths 0..11; machine 11 is the deepest.
            map.insert(format!("load_{m}"), m.to_string());
        }
        let frame = render_frame(&map);
        assert!(frame.contains("top 8 of 12 machines"), "{frame}");
        // The deepest machine leads the pane with a full bar.
        let pane: Vec<&str> = frame
            .lines()
            .filter(|l| l.trim_start().starts_with('m'))
            .collect();
        assert_eq!(pane.len(), 8, "{frame}");
        assert!(
            pane[0].contains("m11") && pane[0].contains("████"),
            "{frame}"
        );
        // The shallowest shown is depth 4; depths 0–3 are cut.
        assert!(pane[7].contains("m4"), "{frame}");
        assert!(!frame.contains("m3 "), "{frame}");
    }

    /// End-to-end over a live session: the stats wire block carries one
    /// `load_<machine>` line per machine and `top` parses them.
    #[test]
    fn stats_block_reports_per_machine_loads() {
        let mut sess = FlowSession::new(FlowParams::new(0.5), 3).unwrap();
        sess.arrive(0.0, 1.0, vec![1.0, 5.0, 5.0]).unwrap();
        sess.arrive(0.0, 1.0, vec![1.0, 5.0, 5.0]).unwrap();
        let block = render_stats(&sess);
        for m in 0..3 {
            assert!(block.contains(&format!("load_{m} ")), "{block}");
        }
        // One job runs, one is pending behind it on the same machine.
        assert!(block.contains("load_0 1"), "{block}");
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(bar(0, 10, 4), "····");
        assert_eq!(bar(10, 10, 4), "████");
        assert_eq!(bar(5, 10, 4), "██··");
        assert_eq!(bar(3, 0, 4), "····");
    }

    #[test]
    fn shed_line_splices_before_the_end_terminator() {
        let sess = FlowSession::new(FlowParams::new(0.5), 2).unwrap();
        let block = with_shed_line(render_stats(&sess), 7);
        assert!(block.ends_with("shed_overload 7\nend\n"), "{block}");
        // Exactly one terminator survives the splice.
        assert_eq!(block.matches("end\n").count(), 1, "{block}");
        // And `top` renders the count on the headline row.
        let mut map = BTreeMap::new();
        for line in block.lines() {
            if let Some((k, v)) = line.split_once(' ') {
                map.insert(k.to_string(), v.to_string());
            }
        }
        let frame = render_frame(&map);
        assert!(frame.contains("shed      7"), "{frame}");
    }

    #[test]
    fn backoff_schedule_is_capped_jittered_and_deterministic() {
        for attempt in 0..12 {
            let d = backoff_delay_ms(attempt);
            let base = (100u64 << attempt.min(6)).min(5000);
            assert!(d >= base, "attempt {attempt}: {d} < base {base}");
            assert!(
                d <= base + base / 4,
                "attempt {attempt}: {d} exceeds 25% jitter over {base}"
            );
            assert_eq!(
                d,
                backoff_delay_ms(attempt),
                "schedule must be deterministic"
            );
        }
        // The cap holds forever.
        assert!(backoff_delay_ms(40) <= 5000 + 5000 / 4);
        // Consecutive attempts don't share a jitter phase.
        assert_ne!(
            backoff_delay_ms(6) - 5000,
            backoff_delay_ms(7) - 5000,
            "jitter should vary by attempt"
        );
    }

    /// A failpoint `error` action mid-batch is a graceful shutdown
    /// request: the batch is rejected wholesale (nothing journaled or
    /// applied), `process_arrive_batch` hands the message up, and the
    /// session still finishes cleanly — identical to a run that never
    /// saw the doomed batch.
    #[test]
    fn failpoint_error_in_a_batch_requests_graceful_shutdown() {
        let dir = std::env::temp_dir().join(format!("osr-serve-fp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("events.journal");
        let _ = std::fs::remove_file(&jpath);
        let fp = osr_core::fingerprint("flow:0.5", 2, &[]);
        let inner = Box::new(FlowSession::new(FlowParams::new(0.5), 2).unwrap());
        let mut sess: Box<dyn ServeSession> =
            Box::new(JournaledSession::create(inner, &jpath, fp, 0).unwrap());
        let (mut id, mut t) = (0usize, 0.0f64);

        // First batch lands normally.
        failpoint::disarm();
        let burst = vec![
            ("arrive 0 @0 w=1 2 4".to_string(), None),
            ("arrive 1 @1 w=2 3 1".to_string(), None),
        ];
        assert!(process_arrive_batch(sess.as_mut(), &mut id, &mut t, burst).is_none());
        assert_eq!((id, t), (2, 1.0));

        // Second batch trips the injected error: nothing applies, the
        // cursor stays put, and the shutdown request comes back.
        failpoint::arm("mid-batch:1:error").unwrap();
        let burst = vec![("arrive 2 @2 w=1 1 1".to_string(), None)];
        let msg = process_arrive_batch(sess.as_mut(), &mut id, &mut t, burst)
            .expect("injected failure must request shutdown");
        assert!(failpoint::is_failpoint_error(&msg), "{msg}");
        failpoint::disarm();
        assert_eq!((id, t), (2, 1.0), "doomed batch must not move the cursor");

        // Graceful finish still works and reflects only the first batch.
        let log = sess.finish().unwrap();
        assert_eq!(log.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
