//! # osr-cli — command-line interface
//!
//! The `osr` binary wraps the workspace for shell use:
//!
//! ```text
//! osr gen --kind flowtime --n 200 --machines 4 --seed 7 --out inst.csv
//! osr run --algo flow:0.25 --input inst.csv --log sched.csv --gantt
//! osr validate --input inst.csv --log sched.csv --model flowtime
//! osr compare --input inst.csv --eps 0.25
//! osr bounds --eps 0.25 --alpha 2.5
//! ```
//!
//! All command logic lives in [`commands`] as pure functions from
//! parsed [`args::Args`] to output strings, so the whole surface is
//! unit-testable without spawning processes.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::Args;
pub use commands::{dispatch, USAGE};
