//! # osr-cli — command-line interface
//!
//! The `osr` binary wraps the workspace for shell use:
//!
//! ```text
//! osr gen --kind flowtime --n 200 --machines 4 --seed 7 --out inst.csv
//! osr run --algo flow:0.25 --input inst.csv --log sched.csv --gantt
//! osr serve --algo flow:0.25 --machines 4 --socket /tmp/osr.sock
//! osr top --socket /tmp/osr.sock
//! osr validate --input inst.csv --log sched.csv --model flowtime
//! osr compare --input inst.csv --eps 0.25
//! osr bounds --eps 0.25 --alpha 2.5
//! ```
//!
//! Command logic lives in [`commands`] as pure functions from parsed
//! [`args::Args`] to a [`CmdOutput`] (stdout payload + stderr
//! notices), so the surface is unit-testable without spawning
//! processes. The two long-running commands (`serve`, `top`) live in
//! [`serve`] and additionally stream stdin / a unix socket.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod serve;

pub use args::Args;
pub use commands::{dispatch, usage, CmdOutput, FLAGS, USAGE};
