//! `osr` binary entry point.

use osr_cli::{dispatch, Args};

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(tokens, &["gantt"]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", osr_cli::USAGE);
            std::process::exit(2);
        }
    };
    match dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
