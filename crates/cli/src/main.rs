//! `osr` binary entry point.

use osr_cli::{dispatch, Args};

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(tokens, osr_cli::FLAGS) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", osr_cli::usage());
            std::process::exit(2);
        }
    };
    match dispatch(&args) {
        Ok(out) => {
            // Notices (ineffective-knob warnings and the like) go to
            // stderr so stdout stays machine-parseable.
            for n in &out.notices {
                eprintln!("{n}");
            }
            print!("{}", out.stdout);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
