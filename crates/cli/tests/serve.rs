//! End-to-end tests of `osr serve` / `osr top` against the real
//! binary: a trace replayed through the streaming ingest loop must
//! produce a log byte-identical to the offline `osr run` on the same
//! instance, for all three schedulers; the ops surfaces (socket stats,
//! `top` frames) must render; and informational notices must land on
//! stderr, never stdout.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn osr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_osr"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("osr-serve-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `osr` with the given whitespace-split arguments, asserting
/// success, and returns (stdout, stderr).
fn run_ok(args: &str) -> (String, String) {
    let out = osr()
        .args(args.split_whitespace())
        .output()
        .expect("spawn osr");
    assert!(
        out.status.success(),
        "osr {args} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

/// Pipes `script` into `osr serve`, returning the raw process output
/// without asserting on the exit status (the kill-recover tests expect
/// the injected death, exit code 17).
fn serve_raw(args: &str, script: &str) -> std::process::Output {
    let mut child = osr()
        .args(args.split_whitespace())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn osr serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    child.wait_with_output().unwrap()
}

/// Pipes `script` into `osr serve --once`, returning stdout bytes.
fn serve_once(args: &str, script: &str) -> String {
    let out = serve_raw(args, script);
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Generates the shared churn fixture: a 90-job instance over 5
/// machines with a join/drain/crash capacity plan (some machines start
/// offline), rendered to a serve script. Returns the fixture directory
/// (holding `inst.csv` / `failures.csv` for [`offline_oracle`]), the
/// script text, and the `--offline` flag the serve runs need.
fn churn_fixture(tag: &str) -> (PathBuf, String, String) {
    let dir = tmpdir(tag);
    run_ok(&format!(
        "gen --scenario poisson-uniform-restricted-churn:0.6 --n 90 --machines 5 --seed 11 \
         --out {} --capacity-out {}",
        dir.join("inst.csv").display(),
        dir.join("failures.csv").display()
    ));
    let inst = osr_model::io::instance_from_str(&fs::read_to_string(dir.join("inst.csv")).unwrap())
        .unwrap();
    let plan =
        osr_workload::parse_failure_trace(&fs::read_to_string(dir.join("failures.csv")).unwrap())
            .unwrap();
    let (script, offline) = osr_workload::serve_script(&inst, &plan).unwrap();
    let offline_flag = if offline.is_empty() {
        String::new()
    } else {
        format!(
            "--offline {}",
            offline
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        )
    };
    (dir, script, offline_flag)
}

/// The offline `osr run` log for `algo` over the fixture in `dir` —
/// the byte-identity oracle every serve/recover run is diffed against.
fn offline_oracle(dir: &std::path::Path, algo: &str) -> String {
    let log_path = dir.join(format!("off-{}.csv", algo.replace(':', "-")));
    run_ok(&format!(
        "run --algo {algo} --input {} --capacity {} --log {}",
        dir.join("inst.csv").display(),
        dir.join("failures.csv").display(),
        log_path.display()
    ));
    fs::read_to_string(&log_path).unwrap()
}

#[test]
fn serve_replay_is_byte_identical_to_offline_run_for_all_schedulers() {
    let (dir, script, offline_flag) = churn_fixture("replay");
    let inst = osr_model::io::instance_from_str(&fs::read_to_string(dir.join("inst.csv")).unwrap())
        .unwrap();
    for algo in ["flow:0.25", "wflow:0.25", "energyflow:0.25:2"] {
        let oracle = offline_oracle(&dir, algo);
        let served = serve_once(
            &format!("serve --algo {algo} --machines 5 {offline_flag} --once"),
            &script,
        );
        assert_eq!(
            served, oracle,
            "{algo}: serve replay diverged from the offline log"
        );
        // The stream really was served online, not just echoed: the log
        // parses and covers every job.
        let log = osr_model::io::log_from_str(&served).unwrap();
        assert_eq!(log.len(), inst.len());
    }
    fs::remove_dir_all(&dir).ok();
}

/// The kill–recover–diff contract, end to end through the real binary:
/// a journaled serve killed at an armed failpoint (exit 17) must, after
/// `--recover` over the same journal plus a re-feed of the full script,
/// produce a log byte-identical to the offline oracle. Every failpoint
/// window is exercised (kill and torn actions), the torn leg relying on
/// recovery to detect and drop the manufactured partial record.
#[test]
fn killed_serve_recovers_to_byte_identical_logs_at_every_failpoint() {
    let (dir, script, offline_flag) = churn_fixture("kill");
    let cases: [(&str, &[&str]); 3] = [
        (
            "flow:0.25",
            &[
                "mid-batch",
                "pre-fsync:3",
                "epoch-barrier",
                "snapshot-write",
                "pre-fsync:5:torn",
            ],
        ),
        ("wflow:0.25", &["mid-batch", "pre-fsync:4:torn"]),
        ("energyflow:0.25:2", &["mid-batch:2", "snapshot-write"]),
    ];
    for (algo, points) in cases {
        let oracle = offline_oracle(&dir, algo);
        for fp in points {
            let journal = dir.join(format!(
                "{}-{}.journal",
                algo.replace(':', "-"),
                fp.replace(':', "-")
            ));
            let out = serve_raw(
                &format!(
                    "serve --algo {algo} --machines 5 {offline_flag} --once \
                     --journal {} --snap-every 4 --failpoint {fp}",
                    journal.display()
                ),
                &script,
            );
            assert_eq!(
                out.status.code(),
                Some(17),
                "{algo} {fp}: expected the injected kill, stderr: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert!(
                String::from_utf8_lossy(&out.stderr).contains("failpoint"),
                "{algo} {fp}: the kill must identify itself on stderr"
            );
            let served = serve_once(
                &format!(
                    "serve --algo {algo} --machines 5 {offline_flag} --once \
                     --journal {} --recover --snap-every 4",
                    journal.display()
                ),
                &script,
            );
            assert_eq!(
                served, oracle,
                "{algo} {fp}: recovered run diverged from the offline log"
            );
        }
    }
    fs::remove_dir_all(&dir).ok();
}

/// The `error` failpoint action asks for a *graceful* shutdown: the
/// journal is flushed, the final (partial) log still lands complete on
/// stdout, the exit code is 0 — and recovery finishes the stream to the
/// oracle bytes. Recovering under a different configuration must be
/// refused by the journal fingerprint.
#[test]
fn failpoint_error_action_shuts_down_gracefully_and_recovery_completes() {
    let (dir, script, offline_flag) = churn_fixture("graceful");
    let algo = "flow:0.25";
    let oracle = offline_oracle(&dir, algo);
    let journal = dir.join("graceful.journal");

    let out = serve_raw(
        &format!(
            "serve --algo {algo} --machines 5 {offline_flag} --once \
             --journal {} --failpoint mid-batch:1:error",
            journal.display()
        ),
        &script,
    );
    assert!(
        out.status.success(),
        "error action must shut down gracefully, stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("shutting down gracefully"),
        "stderr must explain the early exit: {stderr}"
    );
    // The partial log on stdout is complete and parseable — no torn
    // output from the early shutdown.
    let partial = String::from_utf8(out.stdout).unwrap();
    osr_model::io::log_from_str(&partial).expect("partial log parses");

    let served = serve_once(
        &format!(
            "serve --algo {algo} --machines 5 {offline_flag} --once --journal {} --recover",
            journal.display()
        ),
        &script,
    );
    assert_eq!(served, oracle, "recovery after graceful exit diverged");

    // Same journal, different algorithm: the fingerprint must refuse.
    let out = serve_raw(
        &format!(
            "serve --algo wflow:0.25 --machines 5 {offline_flag} --once --journal {} --recover",
            journal.display()
        ),
        "",
    );
    assert!(!out.status.success(), "fingerprint drift must be refused");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("different configuration"),
        "refusal must explain itself: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_socket_feeds_stats_and_top_renders() {
    let dir = tmpdir("top");
    let sock = dir.join("osr.sock");

    let mut serve = osr()
        .args(
            format!(
                "serve --algo flow:0.5 --machines 3 --socket {}",
                sock.display()
            )
            .split_whitespace(),
        )
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn osr serve");
    let mut stdin = serve.stdin.take().unwrap();
    stdin
        .write_all(b"arrive 0 @0 w=1 2 2 2\narrive 1 @0.5 w=2 1 inf 3\n")
        .unwrap();
    stdin.flush().unwrap();

    // Wait for the socket to come up.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !sock.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "serve socket never appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // One `top` frame over the socket.
    let (frame, _) = run_ok(&format!(
        "top --socket {} --frames 1 --interval-ms 10",
        sock.display()
    ));
    assert!(frame.contains("osr top"), "{frame}");
    assert!(frame.contains("flow"), "{frame}");
    assert!(frame.contains("arrived"), "{frame}");
    assert!(frame.contains("p95"), "{frame}");

    // Clean shutdown: the final log lands on serve's stdout and parses.
    stdin.write_all(b"shutdown\n").unwrap();
    drop(stdin);
    let out = serve.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = osr_model::io::log_from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(log.len(), 2);
    assert!(!sock.exists(), "serve must remove its socket on shutdown");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_notices_go_to_stderr_and_stdout_stays_clean() {
    let dir = tmpdir("notices");
    let inst_path = dir.join("inst.csv");
    let (inst_text, _) = run_ok("gen --kind flowtime --n 10 --machines 2 --seed 1");
    fs::write(&inst_path, inst_text).unwrap();

    // m=2 is below the pruned-index crossover: the explicit request
    // must be called out on stderr while stdout stays a clean report.
    let (stdout, stderr) = run_ok(&format!(
        "run --algo flow:0.25 --input {} --dispatch-index pruned --shards 4",
        inst_path.display()
    ));
    assert!(stderr.contains("ineffective"), "{stderr}");
    assert!(stderr.contains("linear scan ran"), "{stderr}");
    assert!(stderr.contains("serial loop ran"), "{stderr}");
    assert!(!stdout.contains("note:"), "{stdout}");
    assert!(!stdout.contains("ineffective"), "{stdout}");
    assert!(stdout.contains("algorithm      :"), "{stdout}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_validates_its_options() {
    // Bad algo specs, machine counts, and offline lists exit 1 with an
    // error on stderr before any stream is read.
    for args in [
        "serve --algo energymin:2 --machines 4 --once",
        "serve --algo flow:0.25 --machines zero --once",
        "serve --algo flow:0.25 --once",
        "serve --algo flow:0.25 --machines 2 --offline 5 --once",
        "serve --algo flow:0.25 --machines 2 --queue-backend quantum --once",
        "serve --algo flow:0.25 --machines 2 --recover --once",
        "serve --algo flow:0.25 --machines 2 --failpoint explode --once",
        "serve --algo flow:0.25 --machines 2 --failpoint mid-batch:0 --once",
        "serve --algo flow:0.25 --machines 2 --snap-every lots --once",
        "serve --algo flow:0.25 --machines 2 --ingest-buffer 0 --once",
    ] {
        let out = osr()
            .args(args.split_whitespace())
            .stdin(Stdio::null())
            .output()
            .unwrap();
        assert!(!out.status.success(), "`osr {args}` should fail");
        assert!(!out.stderr.is_empty(), "`osr {args}` should explain");
    }
}
