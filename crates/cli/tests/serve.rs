//! End-to-end tests of `osr serve` / `osr top` against the real
//! binary: a trace replayed through the streaming ingest loop must
//! produce a log byte-identical to the offline `osr run` on the same
//! instance, for all three schedulers; the ops surfaces (socket stats,
//! `top` frames) must render; and informational notices must land on
//! stderr, never stdout.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn osr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_osr"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("osr-serve-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `osr` with the given whitespace-split arguments, asserting
/// success, and returns (stdout, stderr).
fn run_ok(args: &str) -> (String, String) {
    let out = osr()
        .args(args.split_whitespace())
        .output()
        .expect("spawn osr");
    assert!(
        out.status.success(),
        "osr {args} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
    )
}

/// Pipes `script` into `osr serve --once`, returning stdout bytes.
fn serve_once(args: &str, script: &str) -> String {
    let mut child = osr()
        .args(args.split_whitespace())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn osr serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn serve_replay_is_byte_identical_to_offline_run_for_all_schedulers() {
    let dir = tmpdir("replay");
    let inst_path = dir.join("inst.csv");
    let cap_path = dir.join("failures.csv");

    // A churn scenario: the capacity plan exercises join/drain/crash
    // (and machines that start offline) through the serve stream.
    run_ok(&format!(
        "gen --scenario poisson-uniform-restricted-churn:0.6 --n 90 --machines 5 --seed 11 \
         --out {} --capacity-out {}",
        inst_path.display(),
        cap_path.display()
    ));

    let inst = osr_model::io::instance_from_str(&fs::read_to_string(&inst_path).unwrap()).unwrap();
    let plan = osr_workload::parse_failure_trace(&fs::read_to_string(&cap_path).unwrap()).unwrap();
    let (script, offline) = osr_workload::serve_script(&inst, &plan).unwrap();

    let offline_flag = if offline.is_empty() {
        String::new()
    } else {
        format!(
            "--offline {}",
            offline
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        )
    };

    for algo in ["flow:0.25", "wflow:0.25", "energyflow:0.25:2"] {
        let log_path = dir.join(format!("off-{}.csv", algo.replace(':', "-")));
        run_ok(&format!(
            "run --algo {algo} --input {} --capacity {} --log {}",
            inst_path.display(),
            cap_path.display(),
            log_path.display()
        ));
        let served = serve_once(
            &format!("serve --algo {algo} --machines 5 {offline_flag} --once"),
            &script,
        );
        let oracle = fs::read_to_string(&log_path).unwrap();
        assert_eq!(
            served, oracle,
            "{algo}: serve replay diverged from the offline log"
        );
        // The stream really was served online, not just echoed: the log
        // parses and covers every job.
        let log = osr_model::io::log_from_str(&served).unwrap();
        assert_eq!(log.len(), inst.len());
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_socket_feeds_stats_and_top_renders() {
    let dir = tmpdir("top");
    let sock = dir.join("osr.sock");

    let mut serve = osr()
        .args(
            format!(
                "serve --algo flow:0.5 --machines 3 --socket {}",
                sock.display()
            )
            .split_whitespace(),
        )
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn osr serve");
    let mut stdin = serve.stdin.take().unwrap();
    stdin
        .write_all(b"arrive 0 @0 w=1 2 2 2\narrive 1 @0.5 w=2 1 inf 3\n")
        .unwrap();
    stdin.flush().unwrap();

    // Wait for the socket to come up.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !sock.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "serve socket never appeared"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // One `top` frame over the socket.
    let (frame, _) = run_ok(&format!(
        "top --socket {} --frames 1 --interval-ms 10",
        sock.display()
    ));
    assert!(frame.contains("osr top"), "{frame}");
    assert!(frame.contains("flow"), "{frame}");
    assert!(frame.contains("arrived"), "{frame}");
    assert!(frame.contains("p95"), "{frame}");

    // Clean shutdown: the final log lands on serve's stdout and parses.
    stdin.write_all(b"shutdown\n").unwrap();
    drop(stdin);
    let out = serve.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = osr_model::io::log_from_str(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert_eq!(log.len(), 2);
    assert!(!sock.exists(), "serve must remove its socket on shutdown");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_notices_go_to_stderr_and_stdout_stays_clean() {
    let dir = tmpdir("notices");
    let inst_path = dir.join("inst.csv");
    let (inst_text, _) = run_ok("gen --kind flowtime --n 10 --machines 2 --seed 1");
    fs::write(&inst_path, inst_text).unwrap();

    // m=2 is below the pruned-index crossover: the explicit request
    // must be called out on stderr while stdout stays a clean report.
    let (stdout, stderr) = run_ok(&format!(
        "run --algo flow:0.25 --input {} --dispatch-index pruned --shards 4",
        inst_path.display()
    ));
    assert!(stderr.contains("ineffective"), "{stderr}");
    assert!(stderr.contains("linear scan ran"), "{stderr}");
    assert!(stderr.contains("serial loop ran"), "{stderr}");
    assert!(!stdout.contains("note:"), "{stdout}");
    assert!(!stdout.contains("ineffective"), "{stdout}");
    assert!(stdout.contains("algorithm      :"), "{stdout}");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_validates_its_options() {
    // Bad algo specs, machine counts, and offline lists exit 1 with an
    // error on stderr before any stream is read.
    for args in [
        "serve --algo energymin:2 --machines 4 --once",
        "serve --algo flow:0.25 --machines zero --once",
        "serve --algo flow:0.25 --once",
        "serve --algo flow:0.25 --machines 2 --offline 5 --once",
        "serve --algo flow:0.25 --machines 2 --queue-backend quantum --once",
    ] {
        let out = osr()
            .args(args.split_whitespace())
            .stdin(Stdio::null())
            .output()
            .unwrap();
        assert!(!out.status.success(), "`osr {args}` should fail");
        assert!(!out.stderr.is_empty(), "`osr {args}` should explain");
    }
}
