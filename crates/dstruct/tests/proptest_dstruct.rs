//! Property-based differential tests: the treap and pairing heap must
//! agree with simple reference implementations on arbitrary operation
//! sequences — and the lazily-propagated tournament index must agree
//! with its eager twin and a from-scratch rebuild on arbitrary
//! interleavings of mutations and searches.

use osr_dstruct::{
    AggTreap, BoxedAggTreap, Fenwick, KernelMode, MachineIndex, MachineStats, MaskView,
    NaiveAggQueue, PairingHeap, Propagation, SearchMode, TotalF64,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(i32, f64),
    Remove(i32),
    AggLe(i32),
    AggLt(i32),
    PopFirst,
    PopLast,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weights are a function of the key so that duplicate keys carry equal
    // weights: `remove` on a duplicated key may pick a different victim in
    // the two structures, which is fine for the schedulers (keys are unique
    // composites there) but would make weight-sum comparison ambiguous here.
    prop_oneof![
        (-20i32..20).prop_map(|k| Op::Insert(k, k as f64 * 0.37 + 20.0)),
        (-20i32..20).prop_map(Op::Remove),
        (-25i32..25).prop_map(Op::AggLe),
        (-25i32..25).prop_map(Op::AggLt),
        Just(Op::PopFirst),
        Just(Op::PopLast),
    ]
}

proptest! {
    #[test]
    fn treap_matches_naive_on_random_op_sequences(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut treap = AggTreap::new();
        let mut naive = NaiveAggQueue::new();
        for op in ops {
            match op {
                Op::Insert(k, w) => {
                    treap.insert(k, w);
                    naive.insert(k, w);
                }
                Op::Remove(k) => {
                    let a = treap.remove(&k);
                    let b = naive.remove(&k);
                    prop_assert_eq!(a.is_some(), b.is_some());
                }
                Op::AggLe(k) => {
                    let a = treap.agg_le(&k);
                    let b = naive.agg_le(&k);
                    prop_assert_eq!(a.count, b.count);
                    prop_assert!((a.sum - b.sum).abs() < 1e-9);
                }
                Op::AggLt(k) => {
                    let a = treap.agg_lt(&k);
                    let b = naive.agg_lt(&k);
                    prop_assert_eq!(a.count, b.count);
                    prop_assert!((a.sum - b.sum).abs() < 1e-9);
                }
                Op::PopFirst => {
                    let a = treap.pop_first();
                    let b = naive.pop_first();
                    prop_assert_eq!(a.map(|x| x.0), b.map(|x| x.0));
                }
                Op::PopLast => {
                    let a = treap.pop_last();
                    let b = naive.pop_last();
                    prop_assert_eq!(a.map(|x| x.0), b.map(|x| x.0));
                }
            }
            prop_assert_eq!(treap.len(), naive.len());
            let (ta, na) = (treap.total(), naive.total());
            prop_assert_eq!(ta.count, na.count);
            prop_assert!((ta.sum - na.sum).abs() < 1e-9);
        }
    }

    #[test]
    fn arena_free_list_reuse_stays_differential(
        warmup in prop::collection::vec(-30i32..30, 8..64),
        churn in prop::collection::vec((0u8..4, -30i32..30), 64..600),
    ) {
        // Heavy pop/insert churn over a bounded live set: by the end of
        // warm-up the arena has its high-water mark of slots, so almost
        // every later insert lands on a freed slot — the reuse path the
        // dispatch loop runs in steady state. The boxed treap (fresh
        // allocation per insert, no arena) rides along as a second
        // reference with identical ordering semantics.
        let mut arena = AggTreap::with_capacity(warmup.len());
        let mut boxed = BoxedAggTreap::new();
        let mut naive = NaiveAggQueue::new();
        for &k in &warmup {
            let w = (k.rem_euclid(5)) as f64 + 1.0;
            arena.insert(k, w);
            boxed.insert(k, w);
            naive.insert(k, w);
        }
        for (op, k) in churn {
            match op {
                0 => {
                    let w = (k.rem_euclid(5)) as f64 + 1.0;
                    arena.insert(k, w);
                    boxed.insert(k, w);
                    naive.insert(k, w);
                }
                1 => {
                    let a = arena.pop_first();
                    let b = boxed.pop_first();
                    let c = naive.pop_first();
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(a, c);
                }
                2 => {
                    let a = arena.pop_last();
                    let b = boxed.pop_last();
                    let c = naive.pop_last();
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(a, c);
                }
                _ => {
                    let a = arena.remove(&k);
                    let b = boxed.remove(&k);
                    let c = naive.remove(&k);
                    prop_assert_eq!(a.is_some(), c.is_some());
                    prop_assert_eq!(b.is_some(), c.is_some());
                    let q = arena.agg_le(&k);
                    let r = naive.agg_le(&k);
                    prop_assert_eq!(q.count, r.count);
                    prop_assert!((q.sum - r.sum).abs() < 1e-9);
                }
            }
            prop_assert_eq!(arena.len(), naive.len());
            prop_assert_eq!(arena.first(), naive.first());
            prop_assert_eq!(arena.last(), naive.last());
        }
        // Full in-order sweep at the end: slot reuse must never corrupt
        // the key order or the stored weights.
        let a: Vec<(i32, f64)> = arena.iter().map(|(k, w)| (*k, w)).collect();
        let n: Vec<(i32, f64)> = naive.iter().map(|(k, w)| (*k, w)).collect();
        prop_assert_eq!(a, n);
    }

    #[test]
    fn from_sorted_agrees_with_incremental(
        mut entries in prop::collection::vec((-100i32..100, 0.5f64..9.5), 0..300),
        probes in prop::collection::vec(-110i32..110, 1..20),
    ) {
        entries.sort_by_key(|e| e.0);
        let bulk = AggTreap::from_sorted(entries.clone());
        let mut inc = AggTreap::new();
        for &(k, w) in &entries {
            inc.insert(k, w);
        }
        prop_assert_eq!(bulk.len(), inc.len());
        for p in probes {
            let a = bulk.agg_le(&p);
            let b = inc.agg_le(&p);
            prop_assert_eq!(a.count, b.count);
            prop_assert!((a.sum - b.sum).abs() < 1e-9);
        }
        let a: Vec<i32> = bulk.iter().map(|(k, _)| *k).collect();
        let b: Vec<i32> = inc.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn treap_in_order_iteration_is_sorted(keys in prop::collection::vec(-1000i32..1000, 0..200)) {
        let mut treap = AggTreap::new();
        for &k in &keys {
            treap.insert(k, 1.0);
        }
        let seen: Vec<i32> = treap.iter().map(|(k, _)| *k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seen, sorted);
    }

    #[test]
    fn lazy_tournament_matches_eager_and_rebuild_on_interleavings(
        // Machine counts pinned around the dirty-bitmap word boundary
        // (63/64/65) plus mid/large sizes that force multi-word dirty
        // runs and the heap descent.
        m in prop_oneof![Just(63usize), Just(64), Just(65), 2usize..=40, 100usize..=200],
        ops in prop::collection::vec(ix_op_strategy(), 1..120),
        stride in 1usize..=9,
        offset in 0usize..8,
    ) {
        // Eight live variants (mode × propagation × kernel) plus, at
        // every search, a from-scratch rebuilt eager index and an
        // exhaustive linear reference — all ten must agree bit for bit.
        let mut variants: Vec<(String, MachineIndex)> = [
            (SearchMode::Flat, Propagation::Lazy),
            (SearchMode::Flat, Propagation::Eager),
            (SearchMode::Heap, Propagation::Lazy),
            (SearchMode::Heap, Propagation::Eager),
        ]
        .into_iter()
        .flat_map(|(mode, prop)| {
            [KernelMode::Chunked, KernelMode::Scalar].map(|kern| {
                (
                    format!("{mode:?}/{prop:?}/{kern}"),
                    MachineIndex::with_kernels(m, mode, prop, kern),
                )
            })
        })
        .collect();
        let mut shadow = vec![MachineStats::EMPTY; m];
        let offset = offset % stride;
        let (words, summary) = stride_mask(m, stride, offset);

        for op in ops {
            match op {
                IxOp::Update(i, count, wsum, min_size) => {
                    let i = i % m;
                    let s = MachineStats { count, wsum, min_size };
                    shadow[i] = s;
                    for (_, ix) in variants.iter_mut() {
                        ix.update(i, s);
                    }
                }
                IxOp::Remove(i) => {
                    // "Remove" a machine's queue contents: stats back
                    // to empty (the schedulers' pop-to-empty path).
                    let i = i % m;
                    shadow[i] = MachineStats::EMPTY;
                    for (_, ix) in variants.iter_mut() {
                        ix.update(i, MachineStats::EMPTY);
                    }
                }
                IxOp::Search => {
                    let values: Vec<Option<f64>> = shadow
                        .iter()
                        .map(|s| (s.count % 4 != 3).then(|| eval_of(s)))
                        .collect();
                    let expected = linear_argmin(&values);
                    let fresh = search_of(&mut rebuilt(&shadow), &values, MaskView::All);
                    prop_assert_eq!(fresh, expected, "rebuilt index diverged");
                    for (name, ix) in variants.iter_mut() {
                        let got = search_of(ix, &values, MaskView::All);
                        prop_assert_eq!(got, expected, "{} diverged on search", name);
                    }
                }
                IxOp::SearchMasked => {
                    // Masked: machines outside the stride mask must
                    // evaluate to None (the mask contract).
                    let values: Vec<Option<f64>> = shadow
                        .iter()
                        .enumerate()
                        .map(|(i, s)| (i % stride == offset).then(|| eval_of(s)))
                        .collect();
                    let expected = linear_argmin(&values);
                    let mask = MaskView::Words { words: &words, summary: &summary };
                    let fresh = search_of(&mut rebuilt(&shadow), &values, mask);
                    prop_assert_eq!(fresh, expected, "rebuilt index diverged (masked)");
                    for (name, ix) in variants.iter_mut() {
                        let got = search_of(ix, &values, mask);
                        prop_assert_eq!(got, expected, "{} diverged on search_masked", name);
                    }
                }
            }
        }
    }

    #[test]
    fn pairing_heap_sorts_arbitrary_input(mut xs in prop::collection::vec(any::<i64>(), 0..500)) {
        let mut h = PairingHeap::new();
        for &x in &xs {
            h.push(x);
        }
        let mut out = Vec::with_capacity(xs.len());
        while let Some(x) = h.pop() {
            out.push(x);
        }
        xs.sort_unstable();
        prop_assert_eq!(out, xs);
    }

    #[test]
    fn fenwick_matches_naive_prefix_sums(
        updates in prop::collection::vec((0usize..32, -10.0f64..10.0), 0..200)
    ) {
        let mut naive = vec![0.0f64; 32];
        let mut f = Fenwick::new(32);
        for (i, d) in updates {
            naive[i] += d;
            f.add(i, d);
        }
        let mut acc = 0.0;
        for (i, &v) in naive.iter().enumerate() {
            acc += v;
            prop_assert!((f.prefix(i) - acc).abs() < 1e-9);
        }
    }

    #[test]
    fn total_f64_sort_matches_f64_sort(mut xs in prop::collection::vec(-1e6f64..1e6, 0..200)) {
        let mut wrapped: Vec<TotalF64> = xs.iter().copied().map(TotalF64).collect();
        wrapped.sort();
        xs.sort_by(f64::total_cmp);
        let unwrapped: Vec<f64> = wrapped.into_iter().map(f64::from).collect();
        prop_assert_eq!(unwrapped, xs);
    }

    #[test]
    fn treap_agg_le_is_monotone(keys in prop::collection::vec(0i32..100, 1..100), probe in 0i32..100) {
        let mut treap = AggTreap::new();
        for &k in &keys {
            treap.insert(k, k as f64);
        }
        let a = treap.agg_le(&probe);
        let b = treap.agg_le(&(probe + 1));
        prop_assert!(b.count >= a.count);
        prop_assert!(b.sum >= a.sum - 1e-9);
    }
}

/// One step of a tournament-index interleaving.
#[derive(Debug, Clone)]
enum IxOp {
    /// Replace machine `i % m`'s stats.
    Update(usize, u64, f64, f64),
    /// Empty machine `i % m`'s queue (stats back to `EMPTY`).
    Remove(usize),
    /// Unmasked argmin against the linear reference.
    Search,
    /// Stride-masked argmin against the linear reference.
    SearchMasked,
}

fn ix_op_strategy() -> impl Strategy<Value = IxOp> {
    let update = || {
        ((0usize..1 << 16), 0u64..9, (0u32..160), (1u32..32))
            .prop_map(|(i, c, w, p)| IxOp::Update(i, c, w as f64 / 4.0, p as f64 / 4.0))
    };
    // Mutations dominate (the dispatch loop's real ratio): the point
    // of the lazy design is long mutation runs between searches, so
    // the generator must produce them — hence the repeated arms (the
    // vendored shim's prop_oneof! picks arms uniformly).
    prop_oneof![
        update(),
        update(),
        update(),
        update(),
        (0usize..1 << 16).prop_map(IxOp::Remove),
        Just(IxOp::Search),
        Just(IxOp::SearchMasked),
    ]
}

/// Deterministic exact value derived from a machine's stats (so every
/// variant evaluates identical candidates).
fn eval_of(s: &MachineStats) -> f64 {
    s.count as f64 * 2.0 + s.wsum * 0.5 + s.min_size.min(1e9) * 0.25
}

/// Exhaustive lowest-index argmin reference.
fn linear_argmin(values: &[Option<f64>]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, v) in values.iter().enumerate() {
        if let Some(v) = v {
            if best.is_none_or(|(_, bv)| *v < bv) {
                best = Some((i, *v));
            }
        }
    }
    best
}

/// Runs one search with sound stats-derived bounds (node bounds
/// understate `eval_of` componentwise; leaf bounds are exact when the
/// machine is evaluable).
fn search_of(
    ix: &mut MachineIndex,
    values: &[Option<f64>],
    mask: MaskView<'_>,
) -> Option<(usize, f64)> {
    ix.search_masked(
        mask,
        |s, _, _| s.min_count as f64 * 2.0 + s.min_wsum * 0.5 + s.min_size.min(1e9) * 0.25,
        |i, _| values[i].unwrap_or(f64::INFINITY),
        |i| values[i],
    )
}

/// From-scratch rebuild of the current shadow state (eager heap — the
/// reference the lazy repair must be indistinguishable from).
fn rebuilt(shadow: &[MachineStats]) -> MachineIndex {
    let mut ix = MachineIndex::with_config(shadow.len(), SearchMode::Heap, Propagation::Eager);
    for (i, s) in shadow.iter().enumerate() {
        ix.update(i, *s);
    }
    ix
}

/// The two word layers of a stride mask (machine `i` eligible iff
/// `i % stride == offset`).
fn stride_mask(m: usize, stride: usize, offset: usize) -> (Vec<u64>, Vec<u64>) {
    let mut words = vec![0u64; m.div_ceil(64)];
    for i in (offset..m).step_by(stride) {
        words[i / 64] |= 1 << (i % 64);
    }
    let mut summary = vec![0u64; words.len().div_ceil(64)];
    for (k, w) in words.iter().enumerate() {
        if *w != 0 {
            summary[k / 64] |= 1 << (k % 64);
        }
    }
    (words, summary)
}
