//! The original `Box`-per-node augmented treap, preserved verbatim (one
//! struct rename) as the **ablation baseline** for the arena rewrite in
//! [`crate::treap`].
//!
//! Every insert allocates, every rotation chases heap pointers, and
//! split/merge recurse. The `dstruct_ablation` Criterion bench runs this
//! implementation head-to-head against [`crate::AggTreap`] to quantify
//! what the arena layout buys on the dispatch hot path; nothing else in
//! the workspace should use it.

use crate::treap::Agg;

struct Node<K> {
    key: K,
    weight: f64,
    pri: u64,
    count: usize,
    sum: f64,
    left: Link<K>,
    right: Link<K>,
}

type Link<K> = Option<Box<Node<K>>>;

fn link_agg<K>(link: &Link<K>) -> Agg {
    match link {
        Some(n) => Agg {
            count: n.count,
            sum: n.sum,
        },
        None => Agg::default(),
    }
}

impl<K> Node<K> {
    fn update(&mut self) {
        let l = link_agg(&self.left);
        let r = link_agg(&self.right);
        self.count = 1 + l.count + r.count;
        self.sum = self.weight + l.sum + r.sum;
    }
}

fn merge<K: Ord>(a: Link<K>, b: Link<K>) -> Link<K> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(mut a), Some(mut b)) => {
            if a.pri >= b.pri {
                a.right = merge(a.right.take(), Some(b));
                a.update();
                Some(a)
            } else {
                b.left = merge(Some(a), b.left.take());
                b.update();
                Some(b)
            }
        }
    }
}

/// Splits `t` into `(keys ≤ key, keys > key)` when `inclusive`, else
/// `(keys < key, keys ≥ key)`.
fn split<K: Ord>(t: Link<K>, key: &K, inclusive: bool) -> (Link<K>, Link<K>) {
    match t {
        None => (None, None),
        Some(mut n) => {
            let goes_left = if inclusive {
                n.key <= *key
            } else {
                n.key < *key
            };
            if goes_left {
                let (mid, right) = split(n.right.take(), key, inclusive);
                n.right = mid;
                n.update();
                (Some(n), right)
            } else {
                let (left, mid) = split(n.left.take(), key, inclusive);
                n.left = mid;
                n.update();
                (left, Some(n))
            }
        }
    }
}

/// Pointer-per-node order-statistic treap; see module docs for why this
/// is kept around.
pub struct BoxedAggTreap<K: Ord> {
    root: Link<K>,
    rng: u64,
}

impl<K: Ord> Default for BoxedAggTreap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord> BoxedAggTreap<K> {
    /// Empty treap with a fixed default seed (deterministic shape).
    pub fn new() -> Self {
        Self::with_seed(0x9E3779B97F4A7C15)
    }

    /// Empty treap with an explicit priority seed.
    pub fn with_seed(seed: u64) -> Self {
        BoxedAggTreap {
            root: None,
            rng: seed | 1,
        }
    }

    fn next_pri(&mut self) -> u64 {
        // xorshift64* — cheap, good enough for treap priorities.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        link_agg(&self.root).count
    }

    /// Whether the treap is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Aggregate over all entries.
    pub fn total(&self) -> Agg {
        link_agg(&self.root)
    }

    /// Inserts an entry (one heap allocation).
    pub fn insert(&mut self, key: K, weight: f64) {
        let pri = self.next_pri();
        let node = Some(Box::new(Node {
            key,
            weight,
            pri,
            count: 1,
            sum: weight,
            left: None,
            right: None,
        }));
        let key_ref = &node.as_ref().unwrap().key;
        // Split around the new key, then merge left + node + right.
        let (l, r) = split(self.root.take(), key_ref, true);
        self.root = merge(merge(l, node), r);
    }

    /// Removes one entry with exactly `key`; returns its weight.
    pub fn remove(&mut self, key: &K) -> Option<f64> {
        let (lt, ge) = split(self.root.take(), key, false);
        let (eq, gt) = split(ge, key, true);
        let (weight, eq_rest) = match eq {
            None => (None, None),
            Some(mut n) => {
                // Drop the root of the equal-range; keep its children.
                let w = n.weight;
                let rest = merge(n.left.take(), n.right.take());
                (Some(w), rest)
            }
        };
        self.root = merge(merge(lt, eq_rest), gt);
        weight
    }

    /// Removes and returns the smallest entry.
    pub fn pop_first(&mut self) -> Option<(K, f64)> {
        fn pop_min<K: Ord>(link: &mut Link<K>) -> Option<(K, f64)> {
            let node = link.as_mut()?;
            if node.left.is_some() {
                let out = pop_min(&mut node.left);
                node.update();
                out
            } else {
                let mut n = link.take().unwrap();
                *link = n.right.take();
                Some((n.key, n.weight))
            }
        }
        pop_min(&mut self.root)
    }

    /// Removes and returns the largest entry.
    pub fn pop_last(&mut self) -> Option<(K, f64)> {
        fn pop_max<K: Ord>(link: &mut Link<K>) -> Option<(K, f64)> {
            let node = link.as_mut()?;
            if node.right.is_some() {
                let out = pop_max(&mut node.right);
                node.update();
                out
            } else {
                let mut n = link.take().unwrap();
                *link = n.left.take();
                Some((n.key, n.weight))
            }
        }
        pop_max(&mut self.root)
    }

    /// Aggregate over entries with key `≤ key`.
    pub fn agg_le(&self, key: &K) -> Agg {
        let mut acc = Agg::default();
        let mut cur = &self.root;
        while let Some(n) = cur {
            if n.key <= *key {
                acc = acc.plus(link_agg(&n.left)).plus(Agg {
                    count: 1,
                    sum: n.weight,
                });
                cur = &n.right;
            } else {
                cur = &n.left;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggTreap;

    #[test]
    fn boxed_matches_arena_on_interleaved_ops() {
        let mut boxed = BoxedAggTreap::new();
        let mut arena = AggTreap::new();
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..3000 {
            let key = (next() % 64) as i64;
            match next() % 5 {
                0 | 1 => {
                    let w = (key % 7) as f64 + 1.0;
                    boxed.insert(key, w);
                    arena.insert(key, w);
                }
                2 => {
                    assert_eq!(
                        boxed.remove(&key).is_some(),
                        arena.remove(&key).is_some(),
                        "step {step}"
                    );
                }
                3 => {
                    assert_eq!(
                        boxed.pop_first().map(|x| x.0),
                        arena.pop_first().map(|x| x.0),
                        "step {step}"
                    );
                }
                _ => {
                    let a = boxed.agg_le(&key);
                    let b = arena.agg_le(&key);
                    assert_eq!(a.count, b.count, "step {step}");
                    assert!((a.sum - b.sum).abs() < 1e-9, "step {step}");
                }
            }
            assert_eq!(boxed.len(), arena.len(), "step {step}");
        }
    }
}
