//! A totally ordered `f64` wrapper for use as a search key.

use std::cmp::Ordering;

/// An `f64` with the IEEE-754 total order, usable as an `Ord` key in
/// trees and heaps.
///
/// Scheduling keys in this workspace (processing times, densities,
/// release times) are finite by instance validation, so the total order
/// coincides with the usual numeric order everywhere it matters; the
/// wrapper exists to satisfy `Ord` without `unsafe` or panicking
/// comparators.
#[derive(Debug, Clone, Copy, Default)]
pub struct TotalF64(pub f64);

impl TotalF64 {
    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for TotalF64 {
    #[inline]
    fn from(x: f64) -> Self {
        TotalF64(x)
    }
}

impl From<TotalF64> for f64 {
    #[inline]
    fn from(x: TotalF64) -> Self {
        x.0
    }
}

impl PartialEq for TotalF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for TotalF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Normalise -0.0 to 0.0 so Hash agrees with Eq for the values we
        // actually use (total_cmp distinguishes them, but schedule keys
        // never produce -0.0; bit-hash is fine and cheap).
        let bits = if self.0 == 0.0 {
            0.0f64.to_bits()
        } else {
            self.0.to_bits()
        };
        bits.hash(state);
    }
}

impl std::fmt::Display for TotalF64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_f64_on_normal_values() {
        let mut v = vec![TotalF64(3.0), TotalF64(-1.0), TotalF64(2.5)];
        v.sort();
        let back: Vec<f64> = v.into_iter().map(f64::from).collect();
        assert_eq!(back, vec![-1.0, 2.5, 3.0]);
    }

    #[test]
    fn eq_and_ord_agree() {
        assert_eq!(TotalF64(1.5), TotalF64(1.5));
        assert!(TotalF64(1.0) < TotalF64(2.0));
        assert!(TotalF64(f64::NEG_INFINITY) < TotalF64(0.0));
        assert!(TotalF64(f64::INFINITY) > TotalF64(1e300));
    }

    #[test]
    fn nan_is_consistent() {
        // NaN equals itself under total order — required for Ord's
        // contract; the model never produces NaN keys.
        assert_eq!(TotalF64(f64::NAN), TotalF64(f64::NAN));
        assert!(TotalF64(f64::NAN) > TotalF64(f64::INFINITY));
    }

    #[test]
    fn usable_as_btreemap_key() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(TotalF64(2.0), "b");
        m.insert(TotalF64(1.0), "a");
        let ks: Vec<f64> = m.keys().map(|k| k.get()).collect();
        assert_eq!(ks, vec![1.0, 2.0]);
    }
}
