//! Pairing heap: a simple min-heap with `O(1)` insert/meld and amortized
//! `O(log n)` pop.
//!
//! Provided as an alternative backend for the discrete-event queue in
//! `osr-sim` and benchmarked against `std::collections::BinaryHeap` in
//! the `event_queue` Criterion bench. Event-driven schedulers pop and
//! push in bursts; pairing heaps are a classic fit for that pattern.

struct Node<T> {
    item: T,
    children: Vec<Node<T>>,
}

/// Min-ordered pairing heap.
pub struct PairingHeap<T: Ord> {
    root: Option<Box<Node<T>>>,
    len: usize,
}

impl<T: Ord> Default for PairingHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> PairingHeap<T> {
    /// Empty heap.
    pub fn new() -> Self {
        PairingHeap { root: None, len: 0 }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Smallest item, if any.
    pub fn peek(&self) -> Option<&T> {
        self.root.as_deref().map(|n| &n.item)
    }

    /// Pushes an item in `O(1)`.
    pub fn push(&mut self, item: T) {
        let node = Box::new(Node {
            item,
            children: Vec::new(),
        });
        self.root = Some(match self.root.take() {
            None => node,
            Some(root) => Self::meld(root, node),
        });
        self.len += 1;
    }

    /// Pops the smallest item in amortized `O(log n)`.
    pub fn pop(&mut self) -> Option<T> {
        let root = self.root.take()?;
        self.len -= 1;
        let Node { item, children } = *root;
        self.root = Self::merge_pairs(children);
        Some(item)
    }

    /// Drops all items.
    pub fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }

    /// Melds another heap into this one in `O(1)`.
    pub fn append(&mut self, mut other: PairingHeap<T>) {
        self.len += other.len;
        other.len = 0;
        self.root = match (self.root.take(), other.root.take()) {
            (None, r) | (r, None) => r,
            (Some(a), Some(b)) => Some(Self::meld(a, b)),
        };
    }

    fn meld(mut a: Box<Node<T>>, mut b: Box<Node<T>>) -> Box<Node<T>> {
        if a.item <= b.item {
            a.children.push(*b);
            a
        } else {
            b.children.push(*a);
            b
        }
    }

    /// Two-pass pairing merge, implemented iteratively so deep heaps do
    /// not overflow the stack.
    fn merge_pairs(children: Vec<Node<T>>) -> Option<Box<Node<T>>> {
        let mut pass: Vec<Box<Node<T>>> = Vec::with_capacity(children.len() / 2 + 1);
        let mut it = children.into_iter();
        // First pass: meld adjacent pairs left to right.
        while let Some(a) = it.next() {
            let a = Box::new(a);
            match it.next() {
                Some(b) => pass.push(Self::meld(a, Box::new(b))),
                None => pass.push(a),
            }
        }
        // Second pass: meld right to left.
        let mut acc = pass.pop()?;
        while let Some(next) = pass.pop() {
            acc = Self::meld(next, acc);
        }
        Some(acc)
    }
}

impl<T: Ord> std::fmt::Debug for PairingHeap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairingHeap")
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;

    #[test]
    fn pops_in_sorted_order() {
        let mut h = PairingHeap::new();
        for x in [5, 3, 8, 1, 9, 2, 7] {
            h.push(x);
        }
        let mut out = Vec::new();
        while let Some(x) = h.pop() {
            out.push(x);
        }
        assert_eq!(out, vec![1, 2, 3, 5, 7, 8, 9]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut h = PairingHeap::new();
        h.push(2);
        h.push(1);
        assert_eq!(h.peek(), Some(&1));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn append_melds() {
        let mut a = PairingHeap::new();
        let mut b = PairingHeap::new();
        a.push(4);
        a.push(1);
        b.push(3);
        b.push(2);
        a.append(b);
        assert_eq!(a.len(), 4);
        let mut out = Vec::new();
        while let Some(x) = a.pop() {
            out.push(x);
        }
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn duplicates_preserved() {
        let mut h = PairingHeap::new();
        for _ in 0..5 {
            h.push(7);
        }
        assert_eq!(h.len(), 5);
        let mut count = 0;
        while h.pop() == Some(7) {
            count += 1;
        }
        assert_eq!(count, 5);
    }

    #[test]
    fn max_heap_via_reverse() {
        let mut h = PairingHeap::new();
        for x in [1, 5, 3] {
            h.push(Reverse(x));
        }
        assert_eq!(h.pop(), Some(Reverse(5)));
    }

    #[test]
    fn interleaved_push_pop_matches_binary_heap() {
        use std::collections::BinaryHeap;
        let mut ph = PairingHeap::new();
        let mut bh = BinaryHeap::new();
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..3000 {
            if next() % 3 != 0 {
                let v = (next() % 1000) as i64;
                ph.push(v);
                bh.push(Reverse(v));
            } else {
                assert_eq!(ph.pop(), bh.pop().map(|Reverse(v)| v));
            }
            assert_eq!(ph.len(), bh.len());
        }
    }

    #[test]
    fn sequential_monotone_stream_does_not_overflow() {
        // Pathological shape for naive recursive merge_pairs — the
        // iterative two-pass implementation must handle it.
        let mut h = PairingHeap::new();
        for x in 0..100_000 {
            h.push(x);
        }
        for expect in 0..100_000 {
            assert_eq!(h.pop(), Some(expect));
        }
        assert!(h.is_empty());
    }
}
