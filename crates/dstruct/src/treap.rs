//! Randomized balanced BST augmented with `(count, weight-sum)` subtree
//! aggregates — **index-based arena layout**.
//!
//! This is the engine behind the `O(log n)` evaluation of the paper's
//! dispatch quantity `λ_ij` (§2): with pending jobs keyed by their
//! processing-time order, `λ_ij` is
//!
//! ```text
//! λ_ij = (1/ε) p_ij + Σ_{ℓ ⪯ j} p_iℓ + |{ℓ ≻ j}| · p_ij
//!       = (1/ε) p_ij + agg_le(j).sum + (total().count − agg_le(j).count) · p_ij
//! ```
//!
//! i.e. exactly one [`AggTreap::agg_le`] plus one [`AggTreap::total`]
//! query. The same structure serves the SPT policy ([`AggTreap::pop_first`])
//! and Rule 2 ([`AggTreap::pop_last`]).
//!
//! ## Arena layout
//!
//! Nodes live in one contiguous `Vec<Node<K>>`; links are `u32` slot
//! indices (`NIL = u32::MAX`) instead of `Box` pointers. Removed slots
//! go onto an explicit **free list** and are reused by later inserts, so
//! a steady-state queue (the dispatch hot path: insert on arrival, pop
//! on start/rejection) performs **zero heap allocations** — the arena
//! grows only when the high-water mark of pending jobs does, and
//! [`AggTreap::with_capacity`] can prereserve even that.
//!
//! ## Packed aggregate rows (struct-of-arrays)
//!
//! The `(count, sum)` subtree aggregates live in their **own parallel
//! array** of packed 16-byte rows ([`crate::kernel::AggRow`]), not
//! inside the node struct. The bottom-up aggregate fix after every
//! mutation — two child-agg reads plus one write per level, which
//! `treap_steady_churn` shows is the churn cost — therefore walks a
//! dense array where four rows share a cache line, instead of pulling
//! in each child's full node (key, priority, links) just to read 12
//! bytes of aggregate. Since PR 9 the fix runs through
//! [`crate::kernel::agg_fix4`]: the path's operands (child links, own
//! weights) gather in quads under [`crate::kernel::KernelMode::Chunked`],
//! but the combine itself stays serial in both modes — each level reads
//! the aggregate the level below just wrote, a true dependency chain.
//! The arithmetic is unchanged expression for expression
//! (`weight + left.sum + right.sum`), so aggregate sums stay
//! bit-identical to the previous layout and to a fresh build — the
//! naive-backend-equality contract the schedulers test for.
//!
//! All mutating walks are **iterative** with a reusable scratch stack
//! (no recursion, no per-op allocation), so degenerate priority
//! sequences can slow the treap down but can never overflow the call
//! stack. Insert descends once to the priority-determined attachment
//! point and splits only the subtree below it; remove descends once to
//! the victim and merges only its two subtrees — cheaper than the
//! classic full split + merge at the root, which the superseded
//! implementation (preserved as [`crate::treap_boxed::BoxedAggTreap`]
//! for the `dstruct_ablation` bench) still does.
//!
//! [`AggTreap::from_sorted`] bulk-builds from pre-sorted entries in
//! `O(n)` via the rightmost-spine construction.
//!
//! Vacated slots keep their last key until reuse (pops return a clone —
//! free for the `Copy` composite keys every scheduler uses), which is
//! why extraction methods carry a `K: Clone` bound.
//!
//! Duplicate keys are permitted (they cannot arise with the composite
//! `(p, r, id)` keys used by the schedulers, but the structure does not
//! rely on uniqueness).

use crate::kernel::{self, default_kernel_mode, AggFix, AggRow, KernelMode, LANES};

/// Aggregate over a set of entries: how many, and their total weight.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Agg {
    /// Number of entries.
    pub count: usize,
    /// Sum of entry weights.
    pub sum: f64,
}

impl Agg {
    pub(crate) fn plus(self, other: Agg) -> Agg {
        Agg {
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }
}

/// Sentinel "no node" index.
const NIL: u32 = u32::MAX;

/// One arena slot. A slot on the free list keeps its stale `key` until
/// reuse (see module docs). Subtree aggregates live in the parallel
/// packed array (`AggTreap::aggs`), not here.
struct Node<K> {
    key: K,
    weight: f64,
    pri: u64,
    left: u32,
    right: u32,
}

/// Order-statistic treap with weight aggregates; see module docs.
pub struct AggTreap<K: Ord> {
    nodes: Vec<Node<K>>,
    /// Subtree aggregates, parallel to `nodes` (packed
    /// [`kernel::AggRow`]s — the child-agg update pass reads this
    /// array only).
    aggs: Vec<AggRow>,
    free: Vec<u32>,
    root: u32,
    rng: u64,
    /// Reusable stack for the iterative split/merge stitching walks.
    scratch: Vec<u32>,
    /// Reusable stack for descent paths (insert/remove/pop may run a
    /// split or merge mid-operation, which owns `scratch`).
    descent: Vec<u32>,
    /// Which kernel layer the aggregate fix pass runs (captured from
    /// the process default at construction); results are bit-identical
    /// either way.
    kern: KernelMode,
}

impl<K: Ord> Default for AggTreap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord> AggTreap<K> {
    /// Empty treap with a fixed default seed (deterministic shape).
    pub fn new() -> Self {
        Self::with_seed(0x9E3779B97F4A7C15)
    }

    /// Empty treap with an explicit priority seed.
    pub fn with_seed(seed: u64) -> Self {
        AggTreap {
            nodes: Vec::new(),
            aggs: Vec::new(),
            free: Vec::new(),
            root: NIL,
            rng: seed | 1,
            scratch: Vec::new(),
            descent: Vec::new(),
            kern: default_kernel_mode(),
        }
    }

    /// Empty treap with arena space for `cap` entries preallocated —
    /// inserts up to the high-water mark `cap` never touch the
    /// allocator.
    pub fn with_capacity(cap: usize) -> Self {
        let mut t = Self::new();
        t.nodes.reserve(cap);
        t.aggs.reserve(cap);
        t
    }

    /// Builds a treap from entries **sorted by key** (non-decreasing) in
    /// `O(n)` via the rightmost-spine construction — no splits, no
    /// merges, one arena allocation.
    ///
    /// # Panics
    /// Panics when the input is out of order.
    pub fn from_sorted<I>(entries: I) -> Self
    where
        I: IntoIterator<Item = (K, f64)>,
    {
        let entries = entries.into_iter();
        let mut t = Self::with_capacity(entries.size_hint().0);
        // The right spine: nodes whose right link may still grow, root
        // first.
        let mut spine: Vec<u32> = Vec::new();
        for (key, weight) in entries {
            if let Some(&top) = spine.last() {
                assert!(
                    t.nodes[top as usize].key <= key,
                    "AggTreap::from_sorted: entries out of order"
                );
            }
            let x = t.alloc(key, weight);
            let mut last_popped = NIL;
            while let Some(&top) = spine.last() {
                if t.nodes[top as usize].pri < t.nodes[x as usize].pri {
                    spine.pop();
                    // `top`'s subtree is final once it leaves the spine.
                    t.update(top);
                    last_popped = top;
                } else {
                    break;
                }
            }
            t.nodes[x as usize].left = last_popped;
            match spine.last() {
                Some(&p) => t.nodes[p as usize].right = x,
                None => t.root = x,
            }
            spine.push(x);
        }
        t.fix_path_rev(&spine);
        t
    }

    fn next_pri(&mut self) -> u64 {
        // xorshift64* — cheap, good enough for treap priorities.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.agg(self.root).count
    }

    /// Whether the treap is empty.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Number of entries the arena can hold before growing.
    pub fn capacity(&self) -> usize {
        self.nodes.capacity()
    }

    /// Aggregate over all entries.
    pub fn total(&self) -> Agg {
        self.agg(self.root)
    }

    #[inline]
    fn node(&self, i: u32) -> &Node<K> {
        &self.nodes[i as usize]
    }

    /// The packed aggregate row of slot `i` (zero for `NIL`).
    #[inline]
    fn packed(&self, i: u32) -> AggRow {
        if i == NIL {
            AggRow::ZERO
        } else {
            self.aggs[i as usize]
        }
    }

    #[inline]
    fn agg(&self, i: u32) -> Agg {
        let p = self.packed(i);
        Agg {
            count: p.count as usize,
            sum: p.sum,
        }
    }

    /// Recomputes `i`'s aggregates from its children — the child-agg
    /// update pass: two packed-row reads and one packed-row write
    /// against the dense aggregate array (the node array supplies only
    /// the links and the own weight).
    #[inline]
    fn update(&mut self, i: u32) {
        let (l, r, w) = {
            let n = self.node(i);
            (n.left, n.right, n.weight)
        };
        let la = self.packed(l);
        let ra = self.packed(r);
        self.aggs[i as usize] = AggRow {
            sum: w + la.sum + ra.sum,
            count: 1 + la.count + ra.count,
        };
    }

    /// Recomputes aggregates along a stored walk `path` bottom-up (the
    /// stack is pushed root-first, so fixes run in reverse). This is
    /// the treap's child-agg update pass, routed through
    /// [`kernel::agg_fix4`]: under [`KernelMode::Chunked`] the
    /// independent operands (child links and own weights) gather into
    /// [`AggFix`] quads, but the combine itself is a parent-child
    /// dependency chain and stays serial in both modes — bit-identical
    /// by construction (and honestly ≈ 1× in the kernel ablation; see
    /// BENCH.md "PR 9").
    fn fix_path_rev(&mut self, path: &[u32]) {
        match self.kern {
            KernelMode::Scalar => {
                for &i in path.iter().rev() {
                    self.update(i);
                }
            }
            KernelMode::Chunked => {
                let mut batch = [AggFix::default(); LANES];
                for chunk in path.rchunks(LANES) {
                    for (k, &i) in chunk.iter().rev().enumerate() {
                        let n = &self.nodes[i as usize];
                        batch[k] = AggFix {
                            node: i,
                            left: n.left,
                            right: n.right,
                            weight: n.weight,
                        };
                    }
                    kernel::agg_fix4(self.kern, &mut self.aggs, NIL, &batch[..chunk.len()]);
                }
            }
        }
    }

    /// Takes a slot off the free list (or grows the arena) and
    /// initializes it as a singleton.
    fn alloc(&mut self, key: K, weight: f64) -> u32 {
        let pri = self.next_pri();
        match self.free.pop() {
            Some(i) => {
                let n = &mut self.nodes[i as usize];
                n.key = key;
                n.weight = weight;
                n.pri = pri;
                n.left = NIL;
                n.right = NIL;
                self.aggs[i as usize] = AggRow {
                    sum: weight,
                    count: 1,
                };
                i
            }
            None => {
                let i = self.nodes.len();
                assert!(i < NIL as usize, "AggTreap arena full");
                self.nodes.push(Node {
                    key,
                    weight,
                    pri,
                    left: NIL,
                    right: NIL,
                });
                self.aggs.push(AggRow {
                    sum: weight,
                    count: 1,
                });
                i as u32
            }
        }
    }

    /// Splits the subtree at `t` around the key of node `pivot` into
    /// `(keys ≤ pivot, keys > pivot)`. Iterative: stitches the two
    /// result trees top-down along the search path, then fixes
    /// aggregates bottom-up over the recorded path. (Index-based pivot
    /// so the pivot key can live inside the arena being mutated.)
    fn split_below(&mut self, mut t: u32, pivot: u32) -> (u32, u32) {
        let mut path = std::mem::take(&mut self.scratch);
        debug_assert!(path.is_empty());
        let (mut l, mut r) = (NIL, NIL);
        let (mut l_tail, mut r_tail) = (NIL, NIL);
        while t != NIL {
            path.push(t);
            let goes_left = self.node(t).key <= self.node(pivot).key;
            if goes_left {
                if l_tail == NIL {
                    l = t;
                } else {
                    self.nodes[l_tail as usize].right = t;
                }
                l_tail = t;
                t = self.node(t).right;
            } else {
                if r_tail == NIL {
                    r = t;
                } else {
                    self.nodes[r_tail as usize].left = t;
                }
                r_tail = t;
                t = self.node(t).left;
            }
        }
        if l_tail != NIL {
            self.nodes[l_tail as usize].right = NIL;
        }
        if r_tail != NIL {
            self.nodes[r_tail as usize].left = NIL;
        }
        self.fix_path_rev(&path);
        path.clear();
        self.scratch = path;
        (l, r)
    }

    /// Merges two subtrees where every key in `a` precedes every key in
    /// `b`. Iterative counterpart of the usual recursive merge.
    fn merge(&mut self, mut a: u32, mut b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        let mut path = std::mem::take(&mut self.scratch);
        debug_assert!(path.is_empty());
        let mut root = NIL;
        let mut tail = NIL;
        let mut tail_right = false;
        loop {
            if a == NIL || b == NIL {
                let rest = if a == NIL { b } else { a };
                if tail == NIL {
                    root = rest;
                } else if tail_right {
                    self.nodes[tail as usize].right = rest;
                } else {
                    self.nodes[tail as usize].left = rest;
                }
                break;
            }
            let pick_a = self.node(a).pri >= self.node(b).pri;
            let x = if pick_a { a } else { b };
            if tail == NIL {
                root = x;
            } else if tail_right {
                self.nodes[tail as usize].right = x;
            } else {
                self.nodes[tail as usize].left = x;
            }
            path.push(x);
            tail = x;
            tail_right = pick_a;
            if pick_a {
                a = self.node(x).right;
            } else {
                b = self.node(x).left;
            }
        }
        self.fix_path_rev(&path);
        path.clear();
        self.scratch = path;
        root
    }

    /// Reattaches `child` where the descent left off: under `parent` on
    /// the recorded side, or at the root.
    #[inline]
    fn reattach(&mut self, parent: u32, went_right: bool, child: u32) {
        if parent == NIL {
            self.root = child;
        } else if went_right {
            self.nodes[parent as usize].right = child;
        } else {
            self.nodes[parent as usize].left = child;
        }
    }

    /// Inserts an entry. Steady state (slot available on the free list)
    /// allocates nothing.
    ///
    /// Single descent: walks down while the resident priority wins,
    /// then splits only the subtree below the attachment point.
    pub fn insert(&mut self, key: K, weight: f64) {
        let x = self.alloc(key, weight);
        let xpri = self.node(x).pri;
        let mut path = std::mem::take(&mut self.descent);
        debug_assert!(path.is_empty());
        let mut cur = self.root;
        let mut parent = NIL;
        let mut went_right = false;
        while cur != NIL && self.node(cur).pri >= xpri {
            path.push(cur);
            // Equal keys: the new entry goes after existing ones.
            let go_right = self.node(cur).key <= self.node(x).key;
            parent = cur;
            went_right = go_right;
            cur = if go_right {
                self.node(cur).right
            } else {
                self.node(cur).left
            };
        }
        let (l, r) = self.split_below(cur, x);
        self.nodes[x as usize].left = l;
        self.nodes[x as usize].right = r;
        self.update(x);
        self.reattach(parent, went_right, x);
        // Ancestors gained the new entry: recompute bottom-up (full
        // recompute, not `sum += w` patching, so aggregate sums stay
        // bit-identical to a fresh build — the naive-backend-equality
        // contract the schedulers test for).
        self.fix_path_rev(&path);
        path.clear();
        self.descent = path;
    }

    /// Removes one entry with exactly `key`; returns its weight. The
    /// slot goes to the free list for reuse.
    ///
    /// Single descent to the victim, then one merge of its subtrees.
    pub fn remove(&mut self, key: &K) -> Option<f64> {
        let mut path = std::mem::take(&mut self.descent);
        debug_assert!(path.is_empty());
        let mut cur = self.root;
        let mut parent = NIL;
        let mut went_right = false;
        let found = loop {
            if cur == NIL {
                break false;
            }
            match key.cmp(&self.node(cur).key) {
                std::cmp::Ordering::Equal => break true,
                ord => {
                    path.push(cur);
                    let go_right = ord == std::cmp::Ordering::Greater;
                    parent = cur;
                    went_right = go_right;
                    cur = if go_right {
                        self.node(cur).right
                    } else {
                        self.node(cur).left
                    };
                }
            }
        };
        if !found {
            path.clear();
            self.descent = path;
            return None;
        }
        let weight = self.node(cur).weight;
        let (l, r) = {
            let n = self.node(cur);
            (n.left, n.right)
        };
        let merged = self.merge(l, r);
        self.reattach(parent, went_right, merged);
        self.free.push(cur);
        // Ancestors lost the victim: full bottom-up recompute (see
        // `insert` for why not `sum -= w` patching).
        self.fix_path_rev(&path);
        path.clear();
        self.descent = path;
        Some(weight)
    }

    /// Whether an entry with `key` exists.
    pub fn contains(&self, key: &K) -> bool {
        let mut cur = self.root;
        while cur != NIL {
            match key.cmp(&self.node(cur).key) {
                std::cmp::Ordering::Less => cur = self.node(cur).left,
                std::cmp::Ordering::Greater => cur = self.node(cur).right,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Smallest key.
    pub fn first(&self) -> Option<&K> {
        if self.root == NIL {
            return None;
        }
        let mut cur = self.root;
        while self.node(cur).left != NIL {
            cur = self.node(cur).left;
        }
        Some(&self.node(cur).key)
    }

    /// Largest key.
    pub fn last(&self) -> Option<&K> {
        if self.root == NIL {
            return None;
        }
        let mut cur = self.root;
        while self.node(cur).right != NIL {
            cur = self.node(cur).right;
        }
        Some(&self.node(cur).key)
    }

    /// Removes and returns the entry on the given side (`true` = min).
    fn pop_end(&mut self, min: bool) -> Option<(K, f64)>
    where
        K: Clone,
    {
        if self.root == NIL {
            return None;
        }
        let mut path = std::mem::take(&mut self.scratch);
        debug_assert!(path.is_empty());
        let mut cur = self.root;
        loop {
            let next = if min {
                self.node(cur).left
            } else {
                self.node(cur).right
            };
            if next == NIL {
                break;
            }
            path.push(cur);
            cur = next;
        }
        // The end node keeps at most one child, on the opposite side.
        let orphan = if min {
            self.node(cur).right
        } else {
            self.node(cur).left
        };
        let weight = self.node(cur).weight;
        match path.last() {
            Some(&p) => {
                if min {
                    self.nodes[p as usize].left = orphan;
                } else {
                    self.nodes[p as usize].right = orphan;
                }
            }
            None => self.root = orphan,
        }
        // Full bottom-up recompute; see `insert` for why.
        self.fix_path_rev(&path);
        path.clear();
        self.scratch = path;
        let key = self.node(cur).key.clone();
        self.free.push(cur);
        Some((key, weight))
    }

    /// Removes and returns the smallest entry.
    pub fn pop_first(&mut self) -> Option<(K, f64)>
    where
        K: Clone,
    {
        self.pop_end(true)
    }

    /// Removes and returns the largest entry.
    pub fn pop_last(&mut self) -> Option<(K, f64)>
    where
        K: Clone,
    {
        self.pop_end(false)
    }

    /// Aggregate over entries with key `≤ key`.
    pub fn agg_le(&self, key: &K) -> Agg {
        self.agg_bound(key, true)
    }

    /// Aggregate over entries with key `< key`.
    pub fn agg_lt(&self, key: &K) -> Agg {
        self.agg_bound(key, false)
    }

    fn agg_bound(&self, key: &K, inclusive: bool) -> Agg {
        let mut acc = Agg::default();
        let mut cur = self.root;
        while cur != NIL {
            let n = self.node(cur);
            let in_range = if inclusive {
                n.key <= *key
            } else {
                n.key < *key
            };
            if in_range {
                acc = acc.plus(self.agg(n.left)).plus(Agg {
                    count: 1,
                    sum: n.weight,
                });
                cur = n.right;
            } else {
                cur = n.left;
            }
        }
        acc
    }

    /// In-order iterator over `(&key, weight)`.
    pub fn iter(&self) -> Iter<'_, K> {
        let mut it = Iter {
            treap: self,
            stack: Vec::new(),
        };
        it.push_left(self.root);
        it
    }

    /// Drops all entries and the arena's contents.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.aggs.clear();
        self.free.clear();
        self.root = NIL;
    }
}

/// In-order iterator over an [`AggTreap`].
pub struct Iter<'a, K: Ord> {
    treap: &'a AggTreap<K>,
    stack: Vec<u32>,
}

impl<K: Ord> Iter<'_, K> {
    fn push_left(&mut self, mut i: u32) {
        while i != NIL {
            self.stack.push(i);
            i = self.treap.node(i).left;
        }
    }
}

impl<'a, K: Ord> Iterator for Iter<'a, K> {
    type Item = (&'a K, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let i = self.stack.pop()?;
        let n = &self.treap.nodes[i as usize];
        self.push_left(n.right);
        Some((&n.key, n.weight))
    }
}

impl<K: Ord + std::fmt::Debug> std::fmt::Debug for AggTreap<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggTreap")
            .field("len", &self.len())
            .field("total_sum", &self.total().sum)
            .field("arena_slots", &self.nodes.len())
            .field("free_slots", &self.free.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys<K: Ord + Copy>(t: &AggTreap<K>) -> Vec<K> {
        t.iter().map(|(k, _)| *k).collect()
    }

    /// Recomputes every reachable node's aggregates and checks the
    /// stored values, the BST order, and the heap property.
    fn check_invariants<K: Ord + Copy + std::fmt::Debug>(t: &AggTreap<K>) {
        fn walk<K: Ord + Copy + std::fmt::Debug>(
            t: &AggTreap<K>,
            i: u32,
            lo: Option<K>,
            hi: Option<K>,
        ) -> Agg {
            if i == NIL {
                return Agg::default();
            }
            let n = &t.nodes[i as usize];
            if let Some(lo) = lo {
                assert!(n.key >= lo, "BST order violated at {:?}", n.key);
            }
            if let Some(hi) = hi {
                assert!(n.key <= hi, "BST order violated at {:?}", n.key);
            }
            for child in [n.left, n.right] {
                if child != NIL {
                    assert!(
                        t.nodes[child as usize].pri <= n.pri,
                        "heap property violated"
                    );
                }
            }
            let la = walk(t, n.left, lo, Some(n.key));
            let ra = walk(t, n.right, Some(n.key), hi);
            let expect = 1 + la.count + ra.count;
            let stored = t.aggs[i as usize];
            assert_eq!(stored.count as usize, expect, "stale count at {:?}", n.key);
            assert!(
                (stored.sum - (n.weight + la.sum + ra.sum)).abs() < 1e-9,
                "stale sum at {:?}",
                n.key
            );
            Agg {
                count: expect,
                sum: stored.sum,
            }
        }
        let total = walk(t, t.root, None, None);
        assert_eq!(total.count, t.len());
    }

    #[test]
    fn insert_iterates_in_order() {
        let mut t = AggTreap::new();
        for k in [5, 1, 4, 2, 3] {
            t.insert(k, k as f64);
        }
        assert_eq!(keys(&t), vec![1, 2, 3, 4, 5]);
        assert_eq!(t.len(), 5);
        assert_eq!(t.total().sum, 15.0);
        check_invariants(&t);
    }

    #[test]
    fn agg_le_and_lt() {
        let mut t = AggTreap::new();
        for k in 1..=10 {
            t.insert(k, k as f64);
        }
        let le5 = t.agg_le(&5);
        assert_eq!(le5.count, 5);
        assert_eq!(le5.sum, 15.0);
        let lt5 = t.agg_lt(&5);
        assert_eq!(lt5.count, 4);
        assert_eq!(lt5.sum, 10.0);
        assert_eq!(t.agg_le(&0).count, 0);
        assert_eq!(t.agg_le(&100).count, 10);
    }

    #[test]
    fn first_last_pop() {
        let mut t = AggTreap::new();
        for k in [7, 3, 9, 1] {
            t.insert(k, 1.0);
        }
        assert_eq!(t.first(), Some(&1));
        assert_eq!(t.last(), Some(&9));
        assert_eq!(t.pop_first(), Some((1, 1.0)));
        assert_eq!(t.pop_last(), Some((9, 1.0)));
        assert_eq!(keys(&t), vec![3, 7]);
        assert_eq!(t.len(), 2);
        check_invariants(&t);
    }

    #[test]
    fn remove_specific_key() {
        let mut t = AggTreap::new();
        for k in 1..=5 {
            t.insert(k, k as f64 * 2.0);
        }
        assert_eq!(t.remove(&3), Some(6.0));
        assert_eq!(t.remove(&3), None);
        assert_eq!(keys(&t), vec![1, 2, 4, 5]);
        assert_eq!(t.total().sum, 2.0 + 4.0 + 8.0 + 10.0);
        check_invariants(&t);
    }

    #[test]
    fn duplicates_supported() {
        let mut t = AggTreap::new();
        t.insert(2, 1.0);
        t.insert(2, 2.0);
        t.insert(2, 3.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.agg_le(&2).count, 3);
        // remove takes exactly one of them.
        assert!(t.remove(&2).is_some());
        assert_eq!(t.len(), 2);
        check_invariants(&t);
    }

    #[test]
    fn contains_lookup() {
        let mut t = AggTreap::new();
        t.insert(4, 1.0);
        assert!(t.contains(&4));
        assert!(!t.contains(&5));
    }

    #[test]
    fn pop_on_empty_is_none() {
        let mut t: AggTreap<i32> = AggTreap::new();
        assert!(t.pop_first().is_none());
        assert!(t.pop_last().is_none());
        assert!(t.first().is_none());
        assert!(t.last().is_none());
    }

    #[test]
    fn clear_empties() {
        let mut t = AggTreap::new();
        t.insert(1, 1.0);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn composite_f64_keys_work() {
        use crate::total::TotalF64;
        let mut t: AggTreap<(TotalF64, u32)> = AggTreap::new();
        t.insert((TotalF64(2.5), 0), 2.5);
        t.insert((TotalF64(1.5), 1), 1.5);
        t.insert((TotalF64(2.5), 2), 2.5);
        assert_eq!(t.first().unwrap().1, 1);
        let agg = t.agg_le(&(TotalF64(2.5), u32::MAX));
        assert_eq!(agg.count, 3);
        assert!((agg.sum - 6.5).abs() < 1e-12);
    }

    #[test]
    fn large_sequential_insert_stays_consistent() {
        let mut t = AggTreap::new();
        let n = 10_000;
        for k in 0..n {
            t.insert(k, 1.0);
        }
        assert_eq!(t.len(), n as usize);
        assert_eq!(t.agg_le(&(n / 2)).count, (n / 2 + 1) as usize);
        for k in (0..n).step_by(2) {
            assert_eq!(t.remove(&k), Some(1.0));
        }
        assert_eq!(t.len(), (n / 2) as usize);
        assert_eq!(t.first(), Some(&1));
        check_invariants(&t);
    }

    #[test]
    fn randomized_ops_preserve_invariants() {
        let mut t = AggTreap::new();
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            for _ in 0..50 {
                let k = (next() % 100) as i64;
                match next() % 5 {
                    0 | 1 => t.insert(k, (k % 7) as f64 + 0.5),
                    2 => {
                        t.remove(&k);
                    }
                    3 => {
                        t.pop_first();
                    }
                    _ => {
                        t.pop_last();
                    }
                }
            }
            check_invariants(&t);
            let _ = round;
        }
    }

    #[test]
    fn free_list_reuse_keeps_arena_flat() {
        let mut t = AggTreap::with_capacity(64);
        // Steady-state churn: the live set never exceeds 64 entries, so
        // after warm-up the arena must stop growing — every insert must
        // land on a freed slot.
        for k in 0..64 {
            t.insert(k, 1.0);
        }
        let slots_after_warmup = t.nodes.len();
        for round in 0i64..200 {
            for k in 0..16 {
                t.pop_first();
                t.insert(1000 + round * 16 + k, 1.0);
            }
            assert_eq!(t.len(), 64);
            assert_eq!(
                t.nodes.len(),
                slots_after_warmup,
                "arena grew at round {round}"
            );
        }
        check_invariants(&t);
    }

    #[test]
    fn with_capacity_does_not_grow_under_cap() {
        let mut t = AggTreap::with_capacity(1000);
        let cap = t.capacity();
        assert!(cap >= 1000);
        for k in 0..1000 {
            t.insert(k, 1.0);
        }
        assert_eq!(t.capacity(), cap);
    }

    #[test]
    fn from_sorted_matches_incremental_build() {
        let entries: Vec<(i32, f64)> = (0..500).map(|k| (k, k as f64 * 0.5)).collect();
        let bulk = AggTreap::from_sorted(entries.clone());
        check_invariants(&bulk);
        let mut inc = AggTreap::new();
        for &(k, w) in &entries {
            inc.insert(k, w);
        }
        assert_eq!(bulk.len(), inc.len());
        assert_eq!(keys(&bulk), keys(&inc));
        for probe in [-1, 0, 17, 250, 499, 500] {
            assert_eq!(bulk.agg_le(&probe).count, inc.agg_le(&probe).count);
            assert!((bulk.agg_le(&probe).sum - inc.agg_le(&probe).sum).abs() < 1e-9);
        }
        assert!((bulk.total().sum - inc.total().sum).abs() < 1e-9);
    }

    #[test]
    fn from_sorted_then_mutate() {
        let mut t = AggTreap::from_sorted((0..100).map(|k| (k, 1.0)));
        assert_eq!(t.pop_first(), Some((0, 1.0)));
        assert_eq!(t.pop_last(), Some((99, 1.0)));
        t.insert(-5, 1.0);
        t.insert(500, 1.0);
        assert_eq!(t.remove(&50), Some(1.0));
        assert_eq!(t.len(), 99);
        assert_eq!(t.first(), Some(&-5));
        assert_eq!(t.last(), Some(&500));
        check_invariants(&t);
    }

    #[test]
    fn from_sorted_accepts_duplicates_and_empty() {
        let t: AggTreap<i32> = AggTreap::from_sorted(std::iter::empty());
        assert!(t.is_empty());
        let t = AggTreap::from_sorted([(3, 1.0), (3, 2.0), (3, 3.0)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.agg_le(&3).sum, 6.0);
        check_invariants(&t);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn from_sorted_rejects_unsorted() {
        let _ = AggTreap::from_sorted([(2, 1.0), (1, 1.0)]);
    }

    #[test]
    fn deep_monotone_inserts_do_not_overflow_stack() {
        // The iterative walks must survive any depth; 200k monotone
        // inserts + full drain exercises long spines.
        let mut t = AggTreap::new();
        let n = 200_000i64;
        for k in 0..n {
            t.insert(k, 1.0);
        }
        assert_eq!(t.len(), n as usize);
        let mut prev = -1;
        while let Some((k, _)) = t.pop_first() {
            assert!(k > prev);
            prev = k;
        }
        assert!(t.is_empty());
    }
}
