//! Randomized balanced BST augmented with `(count, weight-sum)` subtree
//! aggregates.
//!
//! This is the engine behind the `O(log n)` evaluation of the paper's
//! dispatch quantity `λ_ij` (§2): with pending jobs keyed by their
//! processing-time order, `λ_ij` is
//!
//! ```text
//! λ_ij = (1/ε) p_ij + Σ_{ℓ ⪯ j} p_iℓ + |{ℓ ≻ j}| · p_ij
//!       = (1/ε) p_ij + agg_le(j).sum + (total().count − agg_le(j).count) · p_ij
//! ```
//!
//! i.e. exactly one [`AggTreap::agg_le`] plus one [`AggTreap::total`]
//! query. The same structure serves the SPT policy ([`AggTreap::pop_first`])
//! and Rule 2 ([`AggTreap::pop_last`]).
//!
//! Duplicate keys are permitted (they cannot arise with the composite
//! `(p, r, id)` keys used by the schedulers, but the structure does not
//! rely on uniqueness).

/// Aggregate over a set of entries: how many, and their total weight.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Agg {
    /// Number of entries.
    pub count: usize,
    /// Sum of entry weights.
    pub sum: f64,
}

impl Agg {
    fn plus(self, other: Agg) -> Agg {
        Agg { count: self.count + other.count, sum: self.sum + other.sum }
    }
}

struct Node<K> {
    key: K,
    weight: f64,
    pri: u64,
    count: usize,
    sum: f64,
    left: Link<K>,
    right: Link<K>,
}

type Link<K> = Option<Box<Node<K>>>;

fn link_agg<K>(link: &Link<K>) -> Agg {
    match link {
        Some(n) => Agg { count: n.count, sum: n.sum },
        None => Agg::default(),
    }
}

impl<K> Node<K> {
    fn update(&mut self) {
        let l = link_agg(&self.left);
        let r = link_agg(&self.right);
        self.count = 1 + l.count + r.count;
        self.sum = self.weight + l.sum + r.sum;
    }
}

fn merge<K: Ord>(a: Link<K>, b: Link<K>) -> Link<K> {
    match (a, b) {
        (None, b) => b,
        (a, None) => a,
        (Some(mut a), Some(mut b)) => {
            if a.pri >= b.pri {
                a.right = merge(a.right.take(), Some(b));
                a.update();
                Some(a)
            } else {
                b.left = merge(Some(a), b.left.take());
                b.update();
                Some(b)
            }
        }
    }
}

/// Splits `t` into `(keys ≤ key, keys > key)` when `inclusive`, else
/// `(keys < key, keys ≥ key)`.
fn split<K: Ord>(t: Link<K>, key: &K, inclusive: bool) -> (Link<K>, Link<K>) {
    match t {
        None => (None, None),
        Some(mut n) => {
            let goes_left = if inclusive { n.key <= *key } else { n.key < *key };
            if goes_left {
                let (mid, right) = split(n.right.take(), key, inclusive);
                n.right = mid;
                n.update();
                (Some(n), right)
            } else {
                let (left, mid) = split(n.left.take(), key, inclusive);
                n.left = mid;
                n.update();
                (left, Some(n))
            }
        }
    }
}

/// Order-statistic treap with weight aggregates; see module docs.
pub struct AggTreap<K: Ord> {
    root: Link<K>,
    rng: u64,
}

impl<K: Ord> Default for AggTreap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord> AggTreap<K> {
    /// Empty treap with a fixed default seed (deterministic shape).
    pub fn new() -> Self {
        Self::with_seed(0x9E3779B97F4A7C15)
    }

    /// Empty treap with an explicit priority seed.
    pub fn with_seed(seed: u64) -> Self {
        AggTreap { root: None, rng: seed | 1 }
    }

    fn next_pri(&mut self) -> u64 {
        // xorshift64* — cheap, good enough for treap priorities.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        link_agg(&self.root).count
    }

    /// Whether the treap is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Aggregate over all entries.
    pub fn total(&self) -> Agg {
        link_agg(&self.root)
    }

    /// Inserts an entry.
    pub fn insert(&mut self, key: K, weight: f64) {
        let pri = self.next_pri();
        let node = Some(Box::new(Node {
            key,
            weight,
            pri,
            count: 1,
            sum: weight,
            left: None,
            right: None,
        }));
        let key_ref = &node.as_ref().unwrap().key;
        // Split around the new key, then merge left + node + right.
        let (l, r) = split(self.root.take(), key_ref, true);
        self.root = merge(merge(l, node), r);
    }

    /// Removes one entry with exactly `key`; returns its weight.
    pub fn remove(&mut self, key: &K) -> Option<f64> {
        let (lt, ge) = split(self.root.take(), key, false);
        let (eq, gt) = split(ge, key, true);
        let (weight, eq_rest) = match eq {
            None => (None, None),
            Some(mut n) => {
                // Drop the root of the equal-range; keep its children.
                let w = n.weight;
                let rest = merge(n.left.take(), n.right.take());
                (Some(w), rest)
            }
        };
        self.root = merge(merge(lt, eq_rest), gt);
        weight
    }

    /// Whether an entry with `key` exists.
    pub fn contains(&self, key: &K) -> bool {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => cur = &n.left,
                std::cmp::Ordering::Greater => cur = &n.right,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Smallest key.
    pub fn first(&self) -> Option<&K> {
        let mut cur = self.root.as_deref()?;
        while let Some(l) = cur.left.as_deref() {
            cur = l;
        }
        Some(&cur.key)
    }

    /// Largest key.
    pub fn last(&self) -> Option<&K> {
        let mut cur = self.root.as_deref()?;
        while let Some(r) = cur.right.as_deref() {
            cur = r;
        }
        Some(&cur.key)
    }

    /// Removes and returns the smallest entry.
    pub fn pop_first(&mut self) -> Option<(K, f64)> {
        fn pop_min<K: Ord>(link: &mut Link<K>) -> Option<(K, f64)> {
            let node = link.as_mut()?;
            if node.left.is_some() {
                let out = pop_min(&mut node.left);
                node.update();
                out
            } else {
                let mut n = link.take().unwrap();
                *link = n.right.take();
                Some((n.key, n.weight))
            }
        }
        pop_min(&mut self.root)
    }

    /// Removes and returns the largest entry.
    pub fn pop_last(&mut self) -> Option<(K, f64)> {
        fn pop_max<K: Ord>(link: &mut Link<K>) -> Option<(K, f64)> {
            let node = link.as_mut()?;
            if node.right.is_some() {
                let out = pop_max(&mut node.right);
                node.update();
                out
            } else {
                let mut n = link.take().unwrap();
                *link = n.left.take();
                Some((n.key, n.weight))
            }
        }
        pop_max(&mut self.root)
    }

    /// Aggregate over entries with key `≤ key`.
    pub fn agg_le(&self, key: &K) -> Agg {
        let mut acc = Agg::default();
        let mut cur = &self.root;
        while let Some(n) = cur {
            if n.key <= *key {
                acc = acc
                    .plus(link_agg(&n.left))
                    .plus(Agg { count: 1, sum: n.weight });
                cur = &n.right;
            } else {
                cur = &n.left;
            }
        }
        acc
    }

    /// Aggregate over entries with key `< key`.
    pub fn agg_lt(&self, key: &K) -> Agg {
        let mut acc = Agg::default();
        let mut cur = &self.root;
        while let Some(n) = cur {
            if n.key < *key {
                acc = acc
                    .plus(link_agg(&n.left))
                    .plus(Agg { count: 1, sum: n.weight });
                cur = &n.right;
            } else {
                cur = &n.left;
            }
        }
        acc
    }

    /// In-order iterator over `(&key, weight)`.
    pub fn iter(&self) -> Iter<'_, K> {
        let mut it = Iter { stack: Vec::new() };
        it.push_left(&self.root);
        it
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.root = None;
    }
}

/// In-order iterator over an [`AggTreap`].
pub struct Iter<'a, K: Ord> {
    stack: Vec<&'a Node<K>>,
}

impl<'a, K: Ord> Iter<'a, K> {
    fn push_left(&mut self, mut link: &'a Link<K>) {
        while let Some(n) = link {
            self.stack.push(n);
            link = &n.left;
        }
    }
}

impl<'a, K: Ord> Iterator for Iter<'a, K> {
    type Item = (&'a K, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left(&n.right);
        Some((&n.key, n.weight))
    }
}

impl<K: Ord + std::fmt::Debug> std::fmt::Debug for AggTreap<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggTreap")
            .field("len", &self.len())
            .field("total_sum", &self.total().sum)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys<K: Ord + Copy>(t: &AggTreap<K>) -> Vec<K> {
        t.iter().map(|(k, _)| *k).collect()
    }

    #[test]
    fn insert_iterates_in_order() {
        let mut t = AggTreap::new();
        for k in [5, 1, 4, 2, 3] {
            t.insert(k, k as f64);
        }
        assert_eq!(keys(&t), vec![1, 2, 3, 4, 5]);
        assert_eq!(t.len(), 5);
        assert_eq!(t.total().sum, 15.0);
    }

    #[test]
    fn agg_le_and_lt() {
        let mut t = AggTreap::new();
        for k in 1..=10 {
            t.insert(k, k as f64);
        }
        let le5 = t.agg_le(&5);
        assert_eq!(le5.count, 5);
        assert_eq!(le5.sum, 15.0);
        let lt5 = t.agg_lt(&5);
        assert_eq!(lt5.count, 4);
        assert_eq!(lt5.sum, 10.0);
        assert_eq!(t.agg_le(&0).count, 0);
        assert_eq!(t.agg_le(&100).count, 10);
    }

    #[test]
    fn first_last_pop() {
        let mut t = AggTreap::new();
        for k in [7, 3, 9, 1] {
            t.insert(k, 1.0);
        }
        assert_eq!(t.first(), Some(&1));
        assert_eq!(t.last(), Some(&9));
        assert_eq!(t.pop_first(), Some((1, 1.0)));
        assert_eq!(t.pop_last(), Some((9, 1.0)));
        assert_eq!(keys(&t), vec![3, 7]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn remove_specific_key() {
        let mut t = AggTreap::new();
        for k in 1..=5 {
            t.insert(k, k as f64 * 2.0);
        }
        assert_eq!(t.remove(&3), Some(6.0));
        assert_eq!(t.remove(&3), None);
        assert_eq!(keys(&t), vec![1, 2, 4, 5]);
        assert_eq!(t.total().sum, 2.0 + 4.0 + 8.0 + 10.0);
    }

    #[test]
    fn duplicates_supported() {
        let mut t = AggTreap::new();
        t.insert(2, 1.0);
        t.insert(2, 2.0);
        t.insert(2, 3.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.agg_le(&2).count, 3);
        // remove takes exactly one of them.
        assert!(t.remove(&2).is_some());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn contains_lookup() {
        let mut t = AggTreap::new();
        t.insert(4, 1.0);
        assert!(t.contains(&4));
        assert!(!t.contains(&5));
    }

    #[test]
    fn pop_on_empty_is_none() {
        let mut t: AggTreap<i32> = AggTreap::new();
        assert!(t.pop_first().is_none());
        assert!(t.pop_last().is_none());
        assert!(t.first().is_none());
        assert!(t.last().is_none());
    }

    #[test]
    fn clear_empties() {
        let mut t = AggTreap::new();
        t.insert(1, 1.0);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn composite_f64_keys_work() {
        use crate::total::TotalF64;
        let mut t: AggTreap<(TotalF64, u32)> = AggTreap::new();
        t.insert((TotalF64(2.5), 0), 2.5);
        t.insert((TotalF64(1.5), 1), 1.5);
        t.insert((TotalF64(2.5), 2), 2.5);
        assert_eq!(t.first().unwrap().1, 1);
        let agg = t.agg_le(&(TotalF64(2.5), u32::MAX));
        assert_eq!(agg.count, 3);
        assert!((agg.sum - 6.5).abs() < 1e-12);
    }

    #[test]
    fn large_sequential_insert_stays_consistent() {
        let mut t = AggTreap::new();
        let n = 10_000;
        for k in 0..n {
            t.insert(k, 1.0);
        }
        assert_eq!(t.len(), n as usize);
        assert_eq!(t.agg_le(&(n / 2)).count, (n / 2 + 1) as usize);
        for k in (0..n).step_by(2) {
            assert_eq!(t.remove(&k), Some(1.0));
        }
        assert_eq!(t.len(), (n / 2) as usize);
        assert_eq!(t.first(), Some(&1));
    }
}
