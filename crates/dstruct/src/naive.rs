//! Sorted-`Vec` reference implementation of the [`crate::AggTreap`] API.
//!
//! Serves two purposes:
//!
//! 1. **differential testing** — property tests drive random operation
//!    sequences through both structures and demand identical answers;
//! 2. **ablation baseline** — the `dstruct_ablation` Criterion bench
//!    quantifies what the treap buys on realistic dispatch workloads
//!    (`O(n)` insert/query here vs `O(log n)` there).

use crate::treap::Agg;

/// Sorted vector of `(key, weight)` with linear-time aggregates.
#[derive(Debug, Clone, Default)]
pub struct NaiveAggQueue<K: Ord> {
    entries: Vec<(K, f64)>,
}

impl<K: Ord> NaiveAggQueue<K> {
    /// Empty queue.
    pub fn new() -> Self {
        NaiveAggQueue {
            entries: Vec::new(),
        }
    }

    /// Empty queue preallocated for `cap` entries, so inserts below
    /// that high-water mark never grow the backing vector (the same
    /// contract as [`crate::AggTreap::with_capacity`]).
    pub fn with_capacity(cap: usize) -> Self {
        NaiveAggQueue {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of entries the backing vector can hold before growing.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Aggregate over all entries.
    pub fn total(&self) -> Agg {
        Agg {
            count: self.entries.len(),
            sum: self.entries.iter().map(|(_, w)| *w).sum(),
        }
    }

    /// Inserts an entry, keeping the vector sorted (stable for equal keys:
    /// new entries go after existing equals, matching treap semantics for
    /// aggregates, which never depend on intra-equal order).
    pub fn insert(&mut self, key: K, weight: f64) {
        let pos = self.entries.partition_point(|(k, _)| *k <= key);
        self.entries.insert(pos, (key, weight));
    }

    /// Removes one entry with exactly `key`; returns its weight.
    pub fn remove(&mut self, key: &K) -> Option<f64> {
        let pos = self.entries.partition_point(|(k, _)| k < key);
        if pos < self.entries.len() && self.entries[pos].0 == *key {
            Some(self.entries.remove(pos).1)
        } else {
            None
        }
    }

    /// Whether an entry with `key` exists.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.binary_search_by(|(k, _)| k.cmp(key)).is_ok()
    }

    /// Smallest key.
    pub fn first(&self) -> Option<&K> {
        self.entries.first().map(|(k, _)| k)
    }

    /// Largest key.
    pub fn last(&self) -> Option<&K> {
        self.entries.last().map(|(k, _)| k)
    }

    /// Removes and returns the smallest entry.
    pub fn pop_first(&mut self) -> Option<(K, f64)> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// Removes and returns the largest entry.
    pub fn pop_last(&mut self) -> Option<(K, f64)> {
        self.entries.pop()
    }

    /// Aggregate over entries with key `≤ key`.
    pub fn agg_le(&self, key: &K) -> Agg {
        let pos = self.entries.partition_point(|(k, _)| k <= key);
        Agg {
            count: pos,
            sum: self.entries[..pos].iter().map(|(_, w)| *w).sum(),
        }
    }

    /// Aggregate over entries with key `< key`.
    pub fn agg_lt(&self, key: &K) -> Agg {
        let pos = self.entries.partition_point(|(k, _)| k < key);
        Agg {
            count: pos,
            sum: self.entries[..pos].iter().map(|(_, w)| *w).sum(),
        }
    }

    /// In-order iterator over `(&key, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (&K, f64)> {
        self.entries.iter().map(|(k, w)| (k, *w))
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrors_treap_basic_behaviour() {
        let mut q = NaiveAggQueue::new();
        for k in [5, 1, 4, 2, 3] {
            q.insert(k, k as f64);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.first(), Some(&1));
        assert_eq!(q.last(), Some(&5));
        assert_eq!(q.agg_le(&3).count, 3);
        assert_eq!(q.agg_le(&3).sum, 6.0);
        assert_eq!(q.agg_lt(&3).count, 2);
        assert_eq!(q.remove(&4), Some(4.0));
        assert_eq!(q.remove(&4), None);
        assert_eq!(q.pop_first(), Some((1, 1.0)));
        assert_eq!(q.pop_last(), Some((5, 5.0)));
        assert_eq!(q.total().count, 2);
    }

    #[test]
    fn with_capacity_preallocates() {
        let mut q: NaiveAggQueue<i64> = NaiveAggQueue::with_capacity(64);
        let cap = q.entries.capacity();
        assert!(cap >= 64);
        for k in 0..64 {
            q.insert(k, 1.0);
        }
        assert_eq!(q.entries.capacity(), cap, "insert below hint reallocated");
    }

    #[test]
    fn differential_vs_treap_randomized() {
        use crate::treap::AggTreap;
        // Deterministic operation stream.
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut naive = NaiveAggQueue::new();
        let mut treap = AggTreap::new();
        for step in 0..2000 {
            let key = (next() % 50) as i64;
            match next() % 4 {
                0 | 1 => {
                    let w = (next() % 100) as f64 / 10.0;
                    naive.insert(key, w);
                    treap.insert(key, w);
                }
                2 => {
                    let a = naive.remove(&key);
                    let b = treap.remove(&key);
                    // Weights of equal keys may differ between the two
                    // structures' choice of victim; both must agree on
                    // presence and keep aggregate consistency (checked
                    // below via totals only when removal results differ).
                    assert_eq!(a.is_some(), b.is_some(), "step {step}");
                }
                _ => {
                    let a = naive.agg_le(&key);
                    let b = treap.agg_le(&key);
                    assert_eq!(a.count, b.count, "step {step} key {key}");
                }
            }
            assert_eq!(naive.len(), treap.len(), "step {step}");
            assert_eq!(naive.first(), treap.first(), "step {step}");
            assert_eq!(naive.last(), treap.last(), "step {step}");
        }
    }
}
