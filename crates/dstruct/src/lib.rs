//! # osr-dstruct — order-statistic and prefix-aggregate structures
//!
//! The SPAA'18 rejection-scheduling algorithms repeatedly answer, at every
//! job arrival and **per machine**, queries of the form
//!
//! > over the pending jobs `ℓ` with processing time at most `p` — how many
//! > are there and what is the sum of their processing times? how many
//! > exceed `p`?
//!
//! (these terms assemble the dispatch quantity `λ_ij` of §2). A naive
//! pending queue answers them in `O(|U_i|)`; the [`treap::AggTreap`] here
//! answers them in `O(log |U_i|)` while also supporting min/max extraction
//! for the SPT scheduling policy and Rule-2 rejections. The Criterion
//! bench `dstruct_ablation` quantifies the difference.
//!
//! Because these queries run on **every arrival per machine**, the treap
//! is the dispatch hot path, and it is built for it: an index-based
//! **arena** (`Vec<Node>` + `u32` links) with a free list, so
//! steady-state insert/remove churn performs zero heap allocations, plus
//! iterative (explicit-stack) split/merge and `O(n)` bulk construction
//! via [`treap::AggTreap::from_sorted`]. See the `treap` module docs for
//! the layout.
//!
//! Contents:
//!
//! * [`total::TotalF64`] — `Ord` wrapper over finite-friendly `f64` keys;
//! * [`fenwick::Fenwick`] — classic binary indexed tree over a fixed index
//!   space (used for time-slot aggregation in the §4 energy search);
//! * [`treap::AggTreap`] — arena-allocated randomized balanced BST
//!   augmented with subtree `(count, weight-sum)` aggregates;
//! * [`treap_boxed::BoxedAggTreap`] — the superseded `Box`-per-node
//!   treap, kept only as the `dstruct_ablation` bench baseline;
//! * [`pairing::PairingHeap`] — amortized-O(1)-meld min-heap, an
//!   alternative event queue backend (selectable in `osr-sim` and
//!   benchmarked against `std::collections::BinaryHeap`);
//! * [`naive::NaiveAggQueue`] — sorted-`Vec` reference implementation with
//!   the same API as `AggTreap`, used for differential testing and as the
//!   ablation baseline;
//! * [`tournament::MachineIndex`] — tournament tree over per-machine
//!   dispatch statistics, powering the *pruned* `λ_ij` argmin that
//!   replaces the schedulers' `O(m)`-per-arrival machine scan
//!   (selectable via `osr-core`'s `DispatchIndex`). Two search modes
//!   behind one entry point: a flat bound scan for mid-size `m` and a
//!   best-first heap descent beyond; both accept a
//!   [`tournament::MaskView`] eligibility bitmask that prunes
//!   ineligible subtrees in `O(1)` word tests (restricted-assignment
//!   and rack-affinity workloads). The *update* side is lazy
//!   ([`tournament::Propagation`]): mutations write a packed
//!   leaf-stats table plus a dirty bitmap, and ancestors are repaired
//!   in one batched sweep only when a heap descent actually reads
//!   them — leaf-only search paths (flat scan, sparse set-bit walk)
//!   never rebuild the tree at all. See `crates/dstruct/README.md`
//!   for the search-side vs update-side design tour.

// Stylistic lints intentionally not followed:
// - `needless_range_loop`: machine loops index several parallel state
//   arrays; iterator zips would obscure the shared index.
// - `neg_cmp_op_on_partial_ord`: `!(x > 0.0)` deliberately treats NaN as
//   invalid in parameter validation.
#![allow(clippy::needless_range_loop, clippy::neg_cmp_op_on_partial_ord)]
#![warn(missing_docs)]

pub mod fenwick;
pub mod kernel;
pub mod naive;
pub mod pairing;
pub mod total;
pub mod tournament;
pub mod treap;
pub mod treap_boxed;

pub use fenwick::Fenwick;
pub use kernel::{default_kernel_mode, set_default_kernel_mode, KernelMode};
pub use naive::NaiveAggQueue;
pub use pairing::PairingHeap;
pub use total::TotalF64;
pub use tournament::{
    default_propagation, set_default_propagation, IndexStats, MachineIndex, MachineStats, MaskView,
    NodeStats, Propagation, SearchMode, ShardMaskScratch,
};
pub use treap::AggTreap;
pub use treap_boxed::BoxedAggTreap;
