//! Tournament (segment) tree over per-machine dispatch statistics —
//! the engine behind the **best-first pruned argmin** that replaces the
//! schedulers' `O(m)`-per-arrival linear scan of `λ_ij`.
//!
//! ## The problem shape
//!
//! Every arrival must find `argmin_i λ_ij` over all `m` machines, with
//! ties broken towards the **lowest machine index** (the contract the
//! linear scan establishes and every downstream artifact depends on).
//! Evaluating one exact `λ_ij` is expensive — an `O(log n)` aggregate
//! query against the machine's pending queue (§2), or an `O(|U_i|)`
//! walk of the pending vector (§3 and the weighted extension). But a
//! *lower bound* on `λ_ij` is cheap: it needs only a few cached
//! per-machine scalars (pending count, pending weight sum, smallest
//! pending size) plus the arriving job's own parameters.
//!
//! ## The structure: a leaf table plus a lazily repaired tree
//!
//! [`MachineIndex`] splits its state in two (a struct-of-arrays
//! layout):
//!
//! * a flat **leaf-stats table** — one packed [`MachineStats`] row
//!   (`count`, `wsum`, `min_size`; 24 bytes, no padding) per machine.
//!   This is the *only* thing a queue mutation writes:
//!   [`MachineIndex::update`] is a single row store.
//! * an **internal-node array** of componentwise extremes
//!   ([`NodeStats`]) over power-of-two machine ranges — the bounds the
//!   best-first descent prunes with.
//!
//! Ancestors are **not** maintained eagerly. Mutations mark the touched
//! machine in a dirty bitmap; the next search that actually reads
//! internal nodes first runs a batched bottom-up **repair sweep** over
//! the dirty subtrees ([`MachineIndex::flush`]): the dirty leaves'
//! parent set is recomputed level by level, deduplicating shared
//! ancestors, in `O(dirty · log m)` — and a run of `k` mutations
//! between two searches costs one sweep, not `k` eager `O(log m)`
//! ancestor rebuilds, because every intermediate ancestor value would
//! have been a dead write. Search paths that never read internal nodes
//! — the flat bound scan and the sparse set-bit walk below — skip the
//! repair entirely, so under [`SearchMode::Flat`] ancestors are never
//! allocated, written, or read at all.
//!
//! The eager behaviour survives as [`Propagation::Eager`]
//! (process-default selectable via [`set_default_propagation`], like
//! `osr-core`'s dispatch toggle) for the `update_churn` ablation bench
//! and the CI equivalence diff; results are bit-identical either way —
//! a search observes exactly the aggregates a from-scratch rebuild
//! would produce, a property the interleaving proptests lock.
//!
//! ## The search contract
//!
//! [`MachineIndex::search`] runs a best-first branch-and-bound: nodes
//! are popped from a min-heap ordered by `(bound, first machine
//! index)`; leaves evaluate the exact `λ_ij` lazily; a node is pruned
//! as soon as its bound can no longer beat the best exact value found
//! (or can only tie it at a higher machine index). Because every
//! pruned subtree provably contains no better-or-lower-indexed
//! candidate, the result is **identical to the full linear scan** —
//! the caller supplies bounds that are true lower bounds (see the
//! callers in `osr-core::dispatch` for the floating-point-safety
//! argument), and the search itself degrades gracefully to visiting
//! every leaf when the bounds prune nothing.
//!
//! The caller-facing contract, precisely:
//!
//! * `node_bound(s, lo, span)` must be `≤ leaf_bound(i, leaf_i)` for
//!   every leaf `i` in `[lo, lo + span)` under a node with aggregate
//!   stats `s` — the range arguments let the caller tighten the bound
//!   with *range-local* job data (e.g. the per-rack `p̂` minima cached
//!   on `osr_model::Job`, which replace the global `p̂` on affinity
//!   workloads);
//! * `leaf_bound(i, s_i)` must be `≤ eval(i)` whenever `eval(i)` is
//!   `Some` (it receives the machine's exact [`MachineStats`] row);
//! * then `search` returns exactly
//!   `min_{i : eval(i).is_some()} (eval(i), i)` under lexicographic
//!   `(value, index)` order — the lowest-index argmin.
//!
//! ## Eligibility masks ([`MachineIndex::search_masked`])
//!
//! On restricted-assignment and rack-affinity workloads most machines
//! cannot run the arriving job at all, yet the subtree bounds above are
//! **eligibility-blind**: they are built from queue statistics and the
//! job's *best-case* size `p̂`, so a subtree consisting entirely of
//! ineligible machines still advertises an attractive bound and the
//! search descends into it, discovering the `∞`s one leaf at a time.
//! [`MachineIndex::search_masked`] takes an additional [`MaskView`] —
//! a borrowed two-layer bitmask (one bit per machine plus a summary
//! bit per 64-bit word) — and skips any subtree whose machine range
//! has an empty intersection with the mask. Because every node's range
//! is a power-of-two span aligned to its size, the intersection test
//! is a **single masked word read** for spans up to 64 machines and a
//! single *summary*-word read for spans up to 4096; only spans beyond
//! that (m > 4096) scan summary words, one per 4096 machines, with an
//! early exit. The mask contract mirrors the bound contract:
//!
//! * for every machine `i` **not** in the mask, `eval(i)` must return
//!   `None` (the mask may only exclude machines that could never win);
//! * then `search_masked` returns exactly what `search` would, while
//!   the descent cost scales with the *eligible* portion of the tree
//!   (for rack-affinity workloads: the eligible racks, not `m`).
//!
//! Sparser still than a rack? When the mask's population count is at
//! most [`FLAT_MAX_MACHINES`], `search_masked` skips the tree
//! entirely and walks the mask's set bits in increasing index order
//! (`O(words + eligible)` total, the linear scan's visit order and
//! tie-break), so a job eligible on 64 of 16384 machines costs what a
//! 64-machine dispatch costs. The walk reads only the leaf table, so
//! it runs **without repairing** any pending dirty ancestors — on
//! affinity workloads whose every job takes this path, the internal
//! tree is simply never rebuilt.
//!
//! ## Flat bound-scan mode ([`SearchMode`])
//!
//! The best-first heap earns its keep at large `m`, where pruning
//! skips whole subtrees; at mid-size `m` (the recorded m ≈ 64
//! crossover, see BENCH.md) the `BinaryHeap` push/pop traffic costs
//! more than it saves. [`MachineIndex::new`] therefore auto-selects
//! [`SearchMode::Flat`] for `m ≤` [`FLAT_MAX_MACHINES`]: a single
//! left-to-right pass over the leaf table with a running best,
//! evaluating a leaf exactly only when its cheap `leaf_bound` (and
//! mask bit) says it could still win. The pass visits leaves in
//! increasing index order and replaces the incumbent only on a
//! strictly smaller value, so its result — value *and* argmin index —
//! is identical to both the heap search and the plain linear scan.
//! A flat-mode index allocates **no internal nodes and no dirty
//! bitmap**: mutations touch exactly one 24-byte leaf row, which is
//! what flipped the m = 64 affinity end-to-end row positive (BENCH.md
//! "PR 5").

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::kernel::{self, default_kernel_mode, KernelMode, LANES};
use crate::total::TotalF64;

/// Borrowed view of a per-job machine-eligibility bitmask, as consumed
/// by [`MachineIndex::search_masked`].
///
/// `words` holds one bit per machine (LSB-first within each `u64`);
/// `summary` holds one bit per *word* (`summary[k/64]` bit `k % 64` is
/// set iff `words[k] != 0`), which is what keeps the subtree
/// intersection test `O(1)` for spans up to 4096 machines. Machines at
/// or beyond `64 * words.len()` are ineligible (the padding leaves of
/// a [`MachineIndex`] always test ineligible).
#[derive(Debug, Clone, Copy)]
pub enum MaskView<'a> {
    /// Every machine is eligible — no pruning, no word reads.
    All,
    /// Restricted eligibility with the two word layers described above.
    Words {
        /// One bit per machine.
        words: &'a [u64],
        /// One bit per word of `words`.
        summary: &'a [u64],
    },
}

/// Any bit set in `bits[..]` within the aligned bit range
/// `[lo, lo + span)`? `span` must be a power of two and `lo` a
/// multiple of `span`; bits beyond the slice are absent (unset).
#[inline]
fn any_bits(bits: &[u64], lo: usize, span: usize) -> bool {
    debug_assert!(span.is_power_of_two() && lo.is_multiple_of(span));
    if span >= 64 {
        // Whole aligned words; early-exit scan (one word per 64 bits).
        let first = lo / 64;
        let last = ((lo + span) / 64).min(bits.len());
        bits[first.min(bits.len())..last].iter().any(|&w| w != 0)
    } else {
        // The range lies inside a single word (span divides 64 and lo
        // is span-aligned).
        match bits.get(lo / 64) {
            Some(&w) => w & ((u64::MAX >> (64 - span)) << (lo % 64)) != 0,
            None => false,
        }
    }
}

impl MaskView<'_> {
    /// Whether machine `i` is eligible.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        match self {
            MaskView::All => true,
            MaskView::Words { words, .. } => any_bits(words, i, 1),
        }
    }

    /// Whether any machine in the aligned range `[lo, lo + span)` is
    /// eligible (`span` a power of two, `lo` a multiple of `span` —
    /// exactly the ranges tournament nodes cover). `O(1)` for
    /// `span ≤ 4096`; one summary word per 4096 machines beyond, with
    /// an early exit.
    #[inline]
    pub fn any_in_range(&self, lo: usize, span: usize) -> bool {
        match self {
            MaskView::All => true,
            MaskView::Words { words, summary } => {
                if span <= 64 {
                    any_bits(words, lo, span)
                } else {
                    any_bits(summary, lo / 64, span / 64)
                }
            }
        }
    }
}

/// Reusable scratch for re-basing a *global* [`MaskView`] onto one
/// shard's machine range (the epoch-sharded driver partitions machines
/// into whole 64-machine racks, so a shard's view of a job's
/// eligibility mask is a word-aligned slice of the global words plus a
/// locally rebuilt summary layer). One scratch per shard, reused across
/// every dispatch — no per-arrival allocation once the high-water mark
/// is reached.
#[derive(Debug, Clone, Default)]
pub struct ShardMaskScratch {
    summary: Vec<u64>,
}

impl ShardMaskScratch {
    /// Empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The view of `mask` restricted to global machines
    /// `[base, base + len)`, re-indexed so local machine `i` is global
    /// machine `base + i`. `base` must be a multiple of 64 (shards own
    /// whole racks), so the slice never splits a word. Machines beyond
    /// the mask's width — including a `base` past the last word — test
    /// ineligible, matching the global view's padding contract.
    pub fn rebase<'a>(&'a mut self, mask: MaskView<'a>, base: usize, len: usize) -> MaskView<'a> {
        match mask {
            MaskView::All => MaskView::All,
            MaskView::Words { words, .. } => {
                debug_assert!(base.is_multiple_of(64), "shard base splits a rack");
                let first = (base / 64).min(words.len());
                let last = (base + len).div_ceil(64).min(words.len());
                let local = &words[first..last];
                self.summary.clear();
                self.summary.resize(local.len().div_ceil(64), 0);
                kernel::summarize_words4(default_kernel_mode(), local, &mut self.summary);
                MaskView::Words {
                    words: local,
                    summary: &self.summary,
                }
            }
        }
    }
}

/// How [`MachineIndex`] locates the argmin internally. Results are
/// identical either way (same `(value, index)` bit for bit); the modes
/// trade constant factors, and [`MachineIndex::new`] picks by `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Single left-to-right pass over the leaf table with a running
    /// best; no heap, no internal nodes at all (none are allocated,
    /// none are ever written). Wins at mid-size `m` where heap traffic
    /// eats the pruning gain.
    Flat,
    /// Best-first bound-pruned descent with a `BinaryHeap` frontier.
    /// Wins at large `m`, where subtree pruning skips most leaves.
    Heap,
}

/// When ancestor aggregates are rebuilt after a leaf mutation. Results
/// are bit-identical either way — a search always observes the
/// aggregates a from-scratch rebuild would produce (locked by the
/// interleaving proptests and the CI `--propagation` diff); the modes
/// trade update-side work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Propagation {
    /// Rebuild the `O(log m)` ancestor path on every
    /// [`MachineIndex::update`] — the pre-PR-5 behaviour, kept as the
    /// `update_churn` ablation baseline and the CI compat mode.
    Eager,
    /// Mutations write the leaf table and a dirty bit only; ancestors
    /// are repaired in one batched bottom-up sweep at the next search
    /// that reads them (`O(dirty · log m)` amortized, zero ancestor
    /// writes for leaf-only search paths).
    #[default]
    Lazy,
}

const PROP_EAGER: u8 = 0;
const PROP_LAZY: u8 = 1;

/// Process-wide default consulted by [`MachineIndex::new`] and
/// [`MachineIndex::with_mode`], so harnesses (e.g. `run_experiments
/// --propagation eager`) can ablate every index the schedulers build
/// without touching call sites — the same pattern as `osr-core`'s
/// dispatch-index default.
static DEFAULT_PROPAGATION: AtomicU8 = AtomicU8::new(PROP_LAZY);

/// Sets the process-wide default [`Propagation`].
pub fn set_default_propagation(p: Propagation) {
    let v = match p {
        Propagation::Eager => PROP_EAGER,
        Propagation::Lazy => PROP_LAZY,
    };
    DEFAULT_PROPAGATION.store(v, Ordering::Relaxed);
}

/// The process-wide default [`Propagation`] (`Lazy` unless overridden
/// via [`set_default_propagation`]).
pub fn default_propagation() -> Propagation {
    match DEFAULT_PROPAGATION.load(Ordering::Relaxed) {
        PROP_EAGER => Propagation::Eager,
        _ => Propagation::Lazy,
    }
}

/// Largest machine count for which [`MachineIndex::new`] picks
/// [`SearchMode::Flat`]: at and below the recorded m ≈ 64 crossover
/// (BENCH.md "PR 2") the heap's push/pop traffic costs more than
/// bound-pruning saves, so the flat scan is the better constant.
pub const FLAT_MAX_MACHINES: usize = 64;

/// Trailing-tombstone run length at which [`MachineIndex::tombstone`]
/// auto-compacts: once a whole rack (64-machine word) of garbage sits
/// at the top of the leaf table, trimming it pays for itself —
/// interior tombstones are never moved (machine ids are fixed), so the
/// tail is the only place storage can actually be reclaimed.
pub const COMPACT_TRAILING_RACK: usize = 64;

/// Largest power of two `≤ k` (for `k ≥ 1`): the heap-layout depth
/// block `k` belongs to, used by the resize graft/un-graft copies.
#[inline]
fn msb(k: usize) -> usize {
    1usize << (usize::BITS - 1 - k.leading_zeros())
}

/// Cached dispatch statistics of one machine's pending queue — one
/// packed row (24 bytes, no padding) of the leaf-stats table.
///
/// All three schedulers derive their `λ_ij` lower bounds from these
/// three scalars (each scheduler uses the subset its formula needs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineStats {
    /// Number of pending jobs `|U_i|` (sans the running job).
    pub count: u64,
    /// Sum of pending weights (processing times in §2, where `w = p`).
    pub wsum: f64,
    /// Smallest pending size, or a lower bound on it
    /// (`f64::INFINITY` when the queue is empty). A *stale-low* value
    /// is allowed: bounds derived from it stay valid lower bounds.
    pub min_size: f64,
}

impl MachineStats {
    /// Stats of an empty pending queue.
    pub const EMPTY: MachineStats = MachineStats {
        count: 0,
        wsum: 0.0,
        min_size: f64::INFINITY,
    };
}

/// Componentwise extremes of [`MachineStats`] over a subtree.
///
/// `min_*` fields bound formulas that grow with the statistic;
/// `max_wsum` exists for the §3 bound, whose prefix-weight denominator
/// *shrinks* the bound as weight grows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStats {
    /// Minimum pending count over the subtree.
    pub min_count: u64,
    /// Minimum pending weight sum over the subtree.
    pub min_wsum: f64,
    /// Maximum pending weight sum over the subtree.
    pub max_wsum: f64,
    /// Minimum `min_size` over the subtree.
    pub min_size: f64,
}

impl NodeStats {
    /// Identity element for [`NodeStats::combine`] (used by padding
    /// leaves beyond `m`): neutral for every component given that real
    /// stats have `count ≥ 0`, `wsum ≥ 0`, `min_size ≤ ∞`.
    const IDENTITY: NodeStats = NodeStats {
        min_count: u64::MAX,
        min_wsum: f64::INFINITY,
        max_wsum: 0.0,
        min_size: f64::INFINITY,
    };

    /// The degenerate aggregate of a single machine's stats row.
    pub fn leaf(s: MachineStats) -> NodeStats {
        NodeStats {
            min_count: s.count,
            min_wsum: s.wsum,
            max_wsum: s.wsum,
            min_size: s.min_size,
        }
    }

    pub(crate) fn combine(a: NodeStats, b: NodeStats) -> NodeStats {
        NodeStats {
            min_count: a.min_count.min(b.min_count),
            min_wsum: a.min_wsum.min(b.min_wsum),
            max_wsum: a.max_wsum.max(b.max_wsum),
            min_size: a.min_size.min(b.min_size),
        }
    }
}

/// Point-in-time snapshot of a [`MachineIndex`]'s internal health,
/// surfaced by the live ops view (`osr top`): how many searches each
/// arm answered (the flat/sparse/heap path mix), how much lazy repair
/// work is queued, and the live/tombstone split of the leaf table.
/// Counters are cumulative since construction; snapshots from several
/// shard-local indexes [`merge`](IndexStats::merge) into one pool-wide
/// view.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Searches answered by the flat dense leaf pass.
    pub flat_searches: u64,
    /// Searches answered by the sparse set-bit walk (restricted masks
    /// at or below [`FLAT_MAX_MACHINES`] eligible machines).
    pub sparse_searches: u64,
    /// Searches answered by the best-first heap descent.
    pub heap_searches: u64,
    /// Dirty leaves whose ancestors await the next batched repair
    /// sweep (the lazy-propagation backlog; always 0 under eager
    /// propagation and in flat mode).
    pub dirty_leaves: usize,
    /// Live (non-tombstoned) machines.
    pub live: usize,
    /// Tombstoned machines still occupying leaves.
    pub tombstones: usize,
}

impl IndexStats {
    /// Total searches across all three arms.
    #[inline]
    pub fn searches(&self) -> u64 {
        self.flat_searches + self.sparse_searches + self.heap_searches
    }

    /// Accumulates another index's snapshot into this one (used to
    /// aggregate per-shard indexes into a pool-wide view).
    pub fn merge(&mut self, other: &IndexStats) {
        self.flat_searches += other.flat_searches;
        self.sparse_searches += other.sparse_searches;
        self.heap_searches += other.heap_searches;
        self.dirty_leaves += other.dirty_leaves;
        self.live += other.live;
        self.tombstones += other.tombstones;
    }
}

/// Heap entry of the best-first search. Min-ordered by
/// `(bound, lo, node)` — the `lo` tiebreak makes the search reach the
/// lowest-index machine first among equal bounds, which is what lets
/// equal-bound subtrees to its right be pruned wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Frontier {
    bound: TotalF64,
    lo: u32,
    node: u32,
    span: u32,
}

/// Tournament tree over per-machine dispatch stats; see module docs.
#[derive(Debug)]
pub struct MachineIndex {
    m: usize,
    /// Leaf capacity: smallest power of two `≥ m`.
    cap: usize,
    /// The leaf-stats table: one packed row per machine, the only
    /// state a mutation writes.
    leaves: Vec<MachineStats>,
    /// Internal nodes 1..cap (index 0 unused; children of `k` at
    /// `2k`/`2k+1`, node ids `≥ cap` denote leaf `id - cap`). Empty in
    /// [`SearchMode::Flat`] — never allocated, never written.
    inner: Vec<NodeStats>,
    /// One dirty bit per machine (lazy propagation only; empty in
    /// `Flat`, where there is nothing to repair).
    dirty: Vec<u64>,
    /// Whether any dirty bit is set (cheap repair short-circuit).
    any_dirty: bool,
    /// Reusable level buffer for the batched repair sweep.
    repair_scratch: Vec<u32>,
    /// Reusable frontier heap (no per-search allocation once warm).
    heap: BinaryHeap<Reverse<Frontier>>,
    /// One tombstone bit per machine: set for machines that left the
    /// elastic pool (drain/crash) or were revealed by a rack-grow but
    /// have not joined yet. Tombstoned leaves aggregate as
    /// [`NodeStats::IDENTITY`] and are skipped by every search arm, so
    /// they can never win an argmin.
    dead: Vec<u64>,
    /// Number of set bits in `dead` (within `0..m`).
    tombstones: usize,
    mode: SearchMode,
    prop: Propagation,
    /// Which kernel layer the hot loops run ([`KernelMode::Chunked`]
    /// or the scalar oracle); results are bit-identical either way.
    kern: KernelMode,
    /// Reusable per-leaf bound buffer for the chunked flat scan (no
    /// per-search allocation once warm; empty under the scalar twin).
    bound_scratch: Vec<f64>,
    /// Searches answered by each arm (see [`IndexStats`]).
    flat_searches: u64,
    sparse_searches: u64,
    heap_searches: u64,
}

impl MachineIndex {
    /// Index over `m` machines, all starting with empty queues, in the
    /// search mode best for `m` (flat at or below
    /// [`FLAT_MAX_MACHINES`], heap above) and the process-default
    /// [`Propagation`].
    ///
    /// # Panics
    /// Panics when `m == 0` (instances always have a machine).
    pub fn new(m: usize) -> Self {
        let mode = if m <= FLAT_MAX_MACHINES {
            SearchMode::Flat
        } else {
            SearchMode::Heap
        };
        Self::with_mode(m, mode)
    }

    /// Index over `m` machines with an explicit [`SearchMode`] (and the
    /// process-default [`Propagation`]) — for the ablation benches and
    /// the crossover-boundary tests; production callers want
    /// [`MachineIndex::new`].
    ///
    /// # Panics
    /// Panics when `m == 0` (instances always have a machine).
    pub fn with_mode(m: usize, mode: SearchMode) -> Self {
        Self::with_config(m, mode, default_propagation())
    }

    /// Explicit search mode *and* propagation mode, with the
    /// process-default [`KernelMode`].
    ///
    /// # Panics
    /// Panics when `m == 0` (instances always have a machine).
    pub fn with_config(m: usize, mode: SearchMode, prop: Propagation) -> Self {
        Self::with_kernels(m, mode, prop, default_kernel_mode())
    }

    /// Fully explicit constructor: search mode, propagation mode *and*
    /// kernel mode (the latter for the kernel ablation benches and the
    /// chunked-vs-scalar equivalence tests; production callers inherit
    /// the process default via the other constructors).
    ///
    /// # Panics
    /// Panics when `m == 0` (instances always have a machine).
    pub fn with_kernels(m: usize, mode: SearchMode, prop: Propagation, kern: KernelMode) -> Self {
        assert!(m > 0, "MachineIndex needs at least one machine");
        let cap = m.next_power_of_two();
        let leaves = vec![MachineStats::EMPTY; m];
        // Flat mode reads nothing but the leaf table: allocate no
        // internal nodes and no dirty bitmap at all.
        let (inner, dirty) = if mode == SearchMode::Flat {
            (Vec::new(), Vec::new())
        } else {
            let dirty = if prop == Propagation::Lazy {
                vec![0u64; m.div_ceil(64)]
            } else {
                Vec::new()
            };
            (vec![NodeStats::IDENTITY; cap], dirty)
        };
        let mut ix = MachineIndex {
            m,
            cap,
            leaves,
            inner,
            dirty,
            any_dirty: false,
            repair_scratch: Vec::new(),
            heap: BinaryHeap::new(),
            dead: vec![0u64; m.div_ceil(64)],
            tombstones: 0,
            mode,
            prop,
            kern,
            bound_scratch: Vec::new(),
            flat_searches: 0,
            sparse_searches: 0,
            heap_searches: 0,
        };
        if mode == SearchMode::Heap {
            ix.rebuild_all();
        }
        ix
    }

    /// The search mode in effect.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// The propagation mode in effect.
    pub fn propagation(&self) -> Propagation {
        self.prop
    }

    /// The kernel mode in effect.
    pub fn kernels(&self) -> KernelMode {
        self.kern
    }

    /// Number of machines indexed.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the index covers no machines (never true; see [`Self::new`]).
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Current leaf-stats row of machine `i` (always fresh — the leaf
    /// table is written synchronously, only ancestors are deferred).
    pub fn stats(&self, i: usize) -> &MachineStats {
        &self.leaves[i]
    }

    /// Whether machine `i` is tombstoned (left the pool, or revealed
    /// by a rack-grow without having joined). `false` beyond `m`.
    #[inline]
    pub fn is_tombstoned(&self, i: usize) -> bool {
        i < self.m && (self.dead[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of live (non-tombstoned) machines.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.m - self.tombstones
    }

    /// Number of tombstoned machines.
    #[inline]
    pub fn tombstone_count(&self) -> usize {
        self.tombstones
    }

    /// Snapshot of the index's internal health for ops surfaces: the
    /// cumulative search path mix, the pending lazy-repair backlog
    /// (dirty-leaf popcount), and the live/tombstone split. `O(m/64)`
    /// for the popcount; no index state changes.
    pub fn index_stats(&self) -> IndexStats {
        IndexStats {
            flat_searches: self.flat_searches,
            sparse_searches: self.sparse_searches,
            heap_searches: self.heap_searches,
            dirty_leaves: self.dirty.iter().map(|w| w.count_ones() as usize).sum(),
            live: self.live_count(),
            tombstones: self.tombstones,
        }
    }

    /// The [`NodeStats`] view of leaf `i` (identity for padding leaves
    /// beyond `m` and for tombstoned machines, which must never
    /// attract the search).
    #[inline]
    fn leaf_ns(&self, i: usize) -> NodeStats {
        if i < self.m && !self.is_tombstoned(i) {
            NodeStats::leaf(self.leaves[i])
        } else {
            NodeStats::IDENTITY
        }
    }

    /// Stats of an arbitrary node id (internal or leaf).
    #[inline]
    fn node_ns(&self, k: usize) -> NodeStats {
        if k >= self.cap {
            self.leaf_ns(k - self.cap)
        } else {
            self.inner[k]
        }
    }

    /// Rebuilds internal node `k` from its two children.
    #[inline]
    fn recompute(&mut self, k: u32) {
        let k = k as usize;
        let c = 2 * k;
        let (a, b) = if c >= self.cap {
            (self.leaf_ns(c - self.cap), self.leaf_ns(c + 1 - self.cap))
        } else {
            (self.inner[c], self.inner[c + 1])
        };
        self.inner[k] = NodeStats::combine(a, b);
    }

    /// Rebuilds every internal node from the leaf table, bottom-up
    /// level by level — equivalent to recomputing nodes `cap-1..=1` in
    /// order, but the fully-internal levels run through
    /// [`kernel::node_fix4`] (four parents, eight contiguous children
    /// per chunk). Only the leaf-parent level reads [`Self::leaf_ns`]
    /// (tombstone/padding resolution); everything above is a pure
    /// `inner`-to-`inner` sweep.
    fn rebuild_all(&mut self) {
        if self.cap == 1 {
            return; // a single leaf has no internal nodes
        }
        for k in (self.cap / 2..self.cap).rev() {
            self.recompute(k as u32);
        }
        // Child level starts at `half`; its parents fill [half/2, half).
        let mut half = self.cap / 2;
        while half >= 2 {
            let lvl = half / 2;
            let (lo, hi) = self.inner.split_at_mut(half);
            kernel::node_fix4(self.kern, &hi[..half], &mut lo[lvl..]);
            half = lvl;
        }
    }

    /// Recomputes one repair-sweep level: `ids` are node ids on a
    /// single tree level, strictly increasing. Runs of four
    /// *consecutive* fully-internal parents (children `2k..2k+8` all
    /// internal, disjoint from the parent run — needs `k ≥ 4`) chunk
    /// through [`kernel::node_fix4`]; everything else falls back to the
    /// scalar [`Self::recompute`].
    fn recompute_run(&mut self, ids: &[u32]) {
        let mut i = 0;
        while i < ids.len() {
            let k = ids[i] as usize;
            if self.kern == KernelMode::Chunked
                && k >= LANES
                && i + LANES <= ids.len()
                && ids[i + LANES - 1] as usize == k + LANES - 1
                && 2 * (k + LANES) <= self.cap
            {
                // `ids` is strictly increasing, so ids[i+3] == k+3
                // implies the run is consecutive; `k ≥ 4` keeps the
                // child slice [2k, 2k+8) disjoint from the parents.
                let (lo, hi) = self.inner.split_at_mut(2 * k);
                kernel::node_fix4(KernelMode::Chunked, &hi[..2 * LANES], &mut lo[k..k + LANES]);
                i += LANES;
            } else {
                self.recompute(ids[i]);
                i += 1;
            }
        }
    }

    /// Replaces machine `i`'s stats. Under [`Propagation::Lazy`] (or
    /// [`SearchMode::Flat`], which has no ancestors at all) this is a
    /// single leaf-row store plus a dirty bit; under
    /// [`Propagation::Eager`] the `O(log m)` ancestor path is rebuilt
    /// immediately. Call after every pending-queue mutation.
    pub fn update(&mut self, i: usize, stats: MachineStats) {
        debug_assert!(i < self.m);
        debug_assert!(!self.is_tombstoned(i), "update of a tombstoned machine");
        self.leaves[i] = stats;
        self.propagate(i);
    }

    /// Marks leaf `i`'s ancestors for repair (dirty bit under lazy
    /// propagation, immediate path rebuild under eager, nothing in
    /// flat mode where no ancestors exist). Shared by [`Self::update`]
    /// and the resize paths, whose leaf-visible aggregates change the
    /// same way.
    fn propagate(&mut self, i: usize) {
        if self.mode == SearchMode::Flat {
            return; // no ancestors exist; nothing else to do
        }
        match self.prop {
            Propagation::Lazy => {
                self.dirty[i / 64] |= 1u64 << (i % 64);
                self.any_dirty = true;
            }
            Propagation::Eager => {
                let mut k = (self.cap + i) / 2;
                while k >= 1 {
                    self.recompute(k as u32);
                    k /= 2;
                }
            }
        }
    }

    /// Repairs all pending dirty ancestors now (normally done
    /// automatically by the first search that reads internal nodes).
    /// One batched bottom-up sweep: the dirty leaves' parents are
    /// recomputed level by level with shared ancestors deduplicated,
    /// `O(dirty · log m)` total. No-op when nothing is dirty or in
    /// [`SearchMode::Flat`].
    pub fn flush(&mut self) {
        if !self.any_dirty {
            return;
        }
        self.any_dirty = false;
        if self.cap == 1 {
            // A single leaf has no ancestors; just clear the bits.
            for w in &mut self.dirty {
                *w = 0;
            }
            return;
        }
        let mut frontier = std::mem::take(&mut self.repair_scratch);
        frontier.clear();
        // Dirty machines in increasing order → their (leaf-parent)
        // node ids are non-decreasing, so adjacent dedup suffices.
        let cap = self.cap;
        kernel::walk_set_bits(&self.dirty, |i| {
            let parent = ((cap + i) / 2) as u32;
            if frontier.last() != Some(&parent) {
                frontier.push(parent);
            }
        });
        for word in &mut self.dirty {
            *word = 0;
        }
        // All frontier nodes sit on one level; walk levels up to the
        // root, recomputing each dirty node once.
        loop {
            self.recompute_run(&frontier);
            if frontier[0] == 1 {
                break; // just recomputed the root
            }
            let mut out = 0usize;
            for idx in 0..frontier.len() {
                let parent = frontier[idx] / 2;
                if out == 0 || frontier[out - 1] != parent {
                    frontier[out] = parent;
                    out += 1;
                }
            }
            frontier.truncate(out);
        }
        frontier.clear();
        self.repair_scratch = frontier;
    }

    /// Brings machine `i` into the pool with the given stats row,
    /// growing the index **by rack** when `i` lies beyond the current
    /// width: the leaf table is extended to the next 64-machine word,
    /// machines revealed by the growth start tombstoned (they join
    /// explicitly, like `i` just did), and when the leaf capacity
    /// doubles the old internal tree is **grafted** as the left
    /// subtree of the new one — an `O(cap)` block copy plus one
    /// recomputed spine, never a from-scratch rebuild of aggregates.
    ///
    /// # Panics
    /// Panics if `i` is already live (capacity plans forbid joining an
    /// online machine).
    pub fn join(&mut self, i: usize, stats: MachineStats) {
        if i >= self.m {
            self.grow_to(i + 1);
        }
        assert!(self.is_tombstoned(i), "join of a live machine {i}");
        self.dead[i / 64] &= !(1u64 << (i % 64));
        self.tombstones -= 1;
        self.leaves[i] = stats;
        self.propagate(i);
    }

    /// Removes machine `i` from the pool (drain or crash): its leaf is
    /// tombstoned in place — aggregating as `NodeStats::IDENTITY`
    /// and skipped by every search arm — because machine ids are
    /// indices into every job's `sizes` row and cannot be renumbered
    /// mid-run. When a whole trailing rack ([`COMPACT_TRAILING_RACK`]
    /// machines) is dead, the index auto-[`compact`](Self::compact)s.
    /// Returns `false` (no-op) if `i` was already tombstoned.
    pub fn tombstone(&mut self, i: usize) -> bool {
        if i >= self.m || self.is_tombstoned(i) {
            return false;
        }
        self.dead[i / 64] |= 1u64 << (i % 64);
        self.tombstones += 1;
        self.leaves[i] = MachineStats::EMPTY;
        self.propagate(i);
        if self.trailing_dead() >= COMPACT_TRAILING_RACK {
            self.compact();
        }
        true
    }

    /// Trims trailing tombstoned leaves (interior tombstones are
    /// immovable — ids are fixed), shrinking the leaf capacity to the
    /// next power of two and un-grafting the internal tree (the
    /// inverse block copy of [`Self::join`]'s graft — the discarded
    /// right spine covered only dead leaves, so the kept aggregates,
    /// *including any pending lazy dirt*, remain exactly what a
    /// rebuild would produce). Keeps at least one leaf. Returns the
    /// number of leaves removed.
    pub fn compact(&mut self) -> usize {
        let mut last_live = None;
        for i in (0..self.m).rev() {
            if !self.is_tombstoned(i) {
                last_live = Some(i);
                break;
            }
        }
        let new_m = last_live.map_or(1, |i| i + 1);
        if new_m == self.m {
            return 0;
        }
        // Every trimmed leaf is tombstoned by construction (they are
        // the trailing dead run); a dead leaf 0 kept by the ≥ 1 floor
        // stays counted.
        let removed = self.m - new_m;
        self.tombstones -= removed;
        self.leaves.truncate(new_m);
        let words = new_m.div_ceil(64);
        self.dead.truncate(words);
        if new_m % 64 != 0 {
            self.dead[words - 1] &= u64::MAX >> (64 - new_m % 64);
        }
        if !self.dirty.is_empty() {
            self.dirty.truncate(words);
            if new_m % 64 != 0 {
                self.dirty[words - 1] &= u64::MAX >> (64 - new_m % 64);
            }
            self.any_dirty = self.dirty.iter().any(|&w| w != 0);
        }
        self.m = new_m;
        let new_cap = new_m.next_power_of_two();
        if new_cap != self.cap && self.mode == SearchMode::Heap {
            let ratio = self.cap / new_cap;
            let mut inner = vec![NodeStats::IDENTITY; new_cap];
            for (k, slot) in inner.iter_mut().enumerate().skip(1) {
                *slot = self.inner[k + msb(k) * (ratio - 1)];
            }
            self.inner = inner;
        }
        self.cap = new_cap;
        removed
    }

    /// Number of consecutive tombstoned leaves at the top of the leaf
    /// table, capped at [`COMPACT_TRAILING_RACK`] (only the threshold
    /// comparison matters, so the scan is `O(64)`).
    fn trailing_dead(&self) -> usize {
        let mut n = 0;
        for i in (0..self.m).rev() {
            if !self.is_tombstoned(i) {
                break;
            }
            n += 1;
            if n >= COMPACT_TRAILING_RACK {
                break;
            }
        }
        n
    }

    /// Extends the leaf table to cover machine `new_m - 1`, rounding
    /// the width up to the next 64-machine word (grow-by-rack). All
    /// revealed machines start tombstoned. When the power-of-two leaf
    /// capacity doubles, the old internal tree is grafted as the left
    /// subtree of the new one.
    fn grow_to(&mut self, new_m: usize) {
        debug_assert!(new_m > self.m);
        let new_m = new_m.div_ceil(64) * 64;
        let old_m = self.m;
        self.leaves.resize(new_m, MachineStats::EMPTY);
        let words = new_m.div_ceil(64);
        self.dead.resize(words, 0);
        for i in old_m..new_m {
            self.dead[i / 64] |= 1u64 << (i % 64);
        }
        self.tombstones += new_m - old_m;
        if self.mode == SearchMode::Heap && self.prop == Propagation::Lazy {
            self.dirty.resize(words, 0);
        }
        self.m = new_m;
        let new_cap = new_m.next_power_of_two();
        if new_cap > self.cap && self.mode == SearchMode::Heap {
            let ratio = new_cap / self.cap;
            let mut inner = vec![NodeStats::IDENTITY; new_cap];
            for (k, &ns) in self.inner.iter().enumerate().skip(1) {
                inner[k + msb(k) * (ratio - 1)] = ns;
            }
            self.inner = inner;
            self.cap = new_cap;
            // Recompute the spine above the grafted old root (node
            // `ratio`); every other new node covers only tombstoned
            // leaves and stays IDENTITY.
            let mut j = ratio / 2;
            while j >= 1 {
                self.recompute(j as u32);
                j /= 2;
            }
        } else {
            // Width grew within the existing capacity: the new leaves
            // are tombstoned, which aggregates exactly like the
            // padding they replaced — no ancestor changes.
            self.cap = new_cap;
        }
    }

    /// Pruned argmin with every machine considered eligible; see the
    /// module docs for the bound contract. Returns `(machine, exact
    /// value)` for the lowest-index machine minimizing `eval`, or
    /// `None` when `eval` returns `None` everywhere.
    pub fn search<NB, LB, EV>(
        &mut self,
        node_bound: NB,
        leaf_bound: LB,
        eval: EV,
    ) -> Option<(usize, f64)>
    where
        NB: Fn(&NodeStats, usize, usize) -> f64,
        LB: Fn(usize, &MachineStats) -> f64,
        EV: FnMut(usize) -> Option<f64>,
    {
        self.search_masked(MaskView::All, node_bound, leaf_bound, eval)
    }

    /// Mask-guided pruned argmin: like [`MachineIndex::search`], but
    /// any subtree whose machine range misses `mask` is skipped
    /// without being descended or bounded (see the module docs for the
    /// mask contract: a masked-out machine's `eval` must be `None`, so
    /// skipping cannot change the result). Dispatches on the
    /// [`SearchMode`] chosen at construction; both modes return the
    /// identical lowest-index argmin. Only the heap descent repairs
    /// pending dirty ancestors — the flat pass and the sparse set-bit
    /// walk read the leaf table alone.
    pub fn search_masked<NB, LB, EV>(
        &mut self,
        mask: MaskView<'_>,
        node_bound: NB,
        leaf_bound: LB,
        eval: EV,
    ) -> Option<(usize, f64)>
    where
        NB: Fn(&NodeStats, usize, usize) -> f64,
        LB: Fn(usize, &MachineStats) -> f64,
        EV: FnMut(usize) -> Option<f64>,
    {
        // Generic quad wrapper: evaluates the scalar bound once per
        // lane. The per-lane expression is the scalar expression, so
        // bit-identity holds by construction; the schedulers pass
        // hand-written leaf-row-slice forms instead (see
        // `osr-core::dispatch`), which autovectorize better.
        let lb4 = |lo: usize, rows: &[MachineStats; LANES], out: &mut [f64; LANES]| {
            for k in 0..LANES {
                out[k] = leaf_bound(lo + k, &rows[k]);
            }
        };
        self.search_masked_rows(mask, node_bound, lb4, &leaf_bound, eval)
    }

    /// [`MachineIndex::search_masked`] with an explicit *leaf-row-slice*
    /// bound form: `leaf_bound4` computes four leaves' bounds from an
    /// aligned quad of [`MachineStats`] rows and must evaluate, lane
    /// for lane, exactly what `leaf_bound` computes for one row (the
    /// contract the kernel proptests and the scheduler equivalence
    /// suites pin). Under [`KernelMode::Chunked`] the flat dense arm
    /// runs the fused [`kernel::bound_min4`] fill over the leaf table
    /// before the incumbent pass; under the scalar oracle (and on
    /// every sparse/heap path) `leaf_bound4` is never called.
    pub fn search_masked_rows<NB, LB4, LB, EV>(
        &mut self,
        mask: MaskView<'_>,
        node_bound: NB,
        leaf_bound4: LB4,
        leaf_bound: LB,
        mut eval: EV,
    ) -> Option<(usize, f64)>
    where
        NB: Fn(&NodeStats, usize, usize) -> f64,
        LB4: FnMut(usize, &[MachineStats; LANES], &mut [f64; LANES]),
        LB: Fn(usize, &MachineStats) -> f64,
        EV: FnMut(usize) -> Option<f64>,
    {
        // (value, index) under lexicographic order; `TotalF64` keeps
        // NaN-poisoned bounds from corrupting comparisons.
        let mut best: Option<(f64, usize)> = None;
        let beats = |cand: f64, idx: usize, best: &Option<(f64, usize)>| -> bool {
            match best {
                None => true,
                Some((bv, bi)) => match TotalF64(cand).cmp(&TotalF64(*bv)) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => idx < *bi,
                    std::cmp::Ordering::Greater => false,
                },
            }
        };

        // Leaf-table set-bit walk, shared by the flat mode (any Words
        // mask) and the heap mode's sparse fast path: visits the
        // mask's set bits in increasing index order (the linear scan's
        // visit order and tie-break) with one `trailing_zeros` per
        // candidate — no heap traffic, no internal nodes, cost
        // `O(words + eligible)` regardless of `m`. Reads only the leaf
        // table, so pending dirty ancestors stay unrepaired (a
        // workload whose every job takes this path never rebuilds the
        // internal tree at all).
        macro_rules! bit_walk {
            ($words:expr) => {{
                for (k, &word) in $words.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let idx = k * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        if idx >= self.m {
                            break;
                        }
                        if self.is_tombstoned(idx) {
                            continue;
                        }
                        let lb = leaf_bound(idx, &self.leaves[idx]);
                        if !beats(lb, idx, &best) {
                            continue;
                        }
                        if let Some(val) = eval(idx) {
                            if beats(val, idx, &best) {
                                best = Some((val, idx));
                            }
                        }
                    }
                }
                return best.map(|(v, i)| (i, v));
            }};
        }

        if self.mode == SearchMode::Flat {
            // Restricted mask: walk its set bits directly — on a
            // rack-affinity workload this touches one mask word and
            // the rack's few leaf rows instead of testing all `m`
            // machines (the last per-arrival `O(m)` term of the flat
            // path, and what pushed the m = 64 affinity row past the
            // linear scan).
            if let MaskView::Words { words, .. } = mask {
                self.sparse_searches += 1;
                bit_walk!(words);
            }
            self.flat_searches += 1;
            // Dense mask: one pass, increasing index,
            // strict-improvement updates — the same visit order and
            // tie-break as the linear scan, minus the exact
            // evaluations the bounds rule out. Reads the leaf table
            // only; no ancestors exist. Under the chunked kernels the
            // bound evaluation runs first as one fused
            // [`kernel::bound_min4`] fill over the whole leaf table
            // (tombstoned rows are EMPTY, their bounds computed but
            // never read), then the incumbent pass consumes the
            // buffered bounds — same values bit for bit, same visit
            // order, same tie-break.
            if self.kern == KernelMode::Chunked {
                let mut scratch = std::mem::take(&mut self.bound_scratch);
                kernel::bound_min4(
                    KernelMode::Chunked,
                    &self.leaves,
                    &mut scratch,
                    leaf_bound4,
                    &leaf_bound,
                );
                for idx in 0..self.m {
                    if self.is_tombstoned(idx) {
                        continue;
                    }
                    let lb = scratch[idx];
                    if !beats(lb, idx, &best) {
                        continue;
                    }
                    if let Some(val) = eval(idx) {
                        if beats(val, idx, &best) {
                            best = Some((val, idx));
                        }
                    }
                }
                self.bound_scratch = scratch;
                return best.map(|(v, i)| (i, v));
            }
            for idx in 0..self.m {
                if self.is_tombstoned(idx) {
                    continue;
                }
                let lb = leaf_bound(idx, &self.leaves[idx]);
                if !beats(lb, idx, &best) {
                    continue;
                }
                if let Some(val) = eval(idx) {
                    if beats(val, idx, &best) {
                        best = Some((val, idx));
                    }
                }
            }
            return best.map(|(v, i)| (i, v));
        }

        // Sparse fast path: when the job is eligible on at most
        // FLAT_MAX_MACHINES machines, the set-bit walk beats any tree
        // descent. This is what makes rack-affinity dispatch scale
        // with the rack size.
        if let MaskView::Words { words, .. } = mask {
            // Only "is the count ≤ the threshold?" matters, so the
            // capped popcount exits as soon as it cannot be — dense
            // masks pay a few words here, not O(m/64).
            if kernel::popcount_capped4(self.kern, words, FLAT_MAX_MACHINES).is_some() {
                self.sparse_searches += 1;
                bit_walk!(words);
            }
        }

        // The heap descent reads internal nodes: repair them first
        // (one batched sweep over everything dirtied since the last
        // descent).
        self.heap_searches += 1;
        self.flush();

        self.heap.clear();
        if mask.any_in_range(0, self.cap) {
            self.heap.push(Reverse(Frontier {
                bound: TotalF64(node_bound(&self.node_ns(1), 0, self.cap)),
                lo: 0,
                node: 1,
                span: self.cap as u32,
            }));
        }

        while let Some(Reverse(e)) = self.heap.pop() {
            if let Some((bv, bi)) = best {
                // The heap is min-ordered by (bound, lo): once the head
                // cannot beat or lower-index-tie the incumbent, nothing
                // behind it can either.
                let cmp = e.bound.cmp(&TotalF64(bv));
                if cmp == std::cmp::Ordering::Greater
                    || (cmp == std::cmp::Ordering::Equal && e.lo as usize >= bi)
                {
                    break;
                }
            }
            if e.node as usize >= self.cap {
                let idx = e.node as usize - self.cap;
                if idx >= self.m || self.is_tombstoned(idx) {
                    continue; // padding or tombstoned leaf
                }
                let lb = leaf_bound(idx, &self.leaves[idx]);
                if !beats(lb, idx, &best) {
                    continue;
                }
                if let Some(val) = eval(idx) {
                    if beats(val, idx, &best) {
                        best = Some((val, idx));
                    }
                }
            } else {
                let half = e.span / 2;
                for (child, lo) in [(2 * e.node, e.lo), (2 * e.node + 1, e.lo + half)] {
                    // Mask first: a range with no eligible machine is
                    // skipped without even computing its bound.
                    if !mask.any_in_range(lo as usize, half as usize) {
                        continue;
                    }
                    let b = node_bound(&self.node_ns(child as usize), lo as usize, half as usize);
                    if beats(b, lo as usize, &best) {
                        self.heap.push(Reverse(Frontier {
                            bound: TotalF64(b),
                            lo,
                            node: child,
                            span: half,
                        }));
                    }
                }
            }
        }
        best.map(|(v, i)| (i, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(count: u64, wsum: f64, min: f64) -> MachineStats {
        MachineStats {
            count,
            wsum,
            min_size: min,
        }
    }

    /// Exhaustive reference: lowest-index argmin over eval.
    fn linear_argmin(values: &[Option<f64>]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, v) in values.iter().enumerate() {
            if let Some(v) = v {
                if best.is_none_or(|(_, bv)| *v < bv) {
                    best = Some((i, *v));
                }
            }
        }
        best
    }

    /// Searches with bounds equal to the exact values (tightest legal).
    fn search_exact(ix: &mut MachineIndex, values: &[Option<f64>]) -> Option<(usize, f64)> {
        // Node bound: no per-leaf info, so use the global min value —
        // a legal (if clairvoyant) lower bound.
        let global = values
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        ix.search(
            |_, _, _| global,
            |i, _| values[i].unwrap_or(f64::INFINITY),
            |i| values[i],
        )
    }

    #[test]
    fn shard_mask_rebase_slices_whole_racks() {
        // Global mask over 200 machines: bits 3, 64, 100, 199.
        let mut words = vec![0u64; 4];
        for i in [3usize, 64, 100, 199] {
            words[i / 64] |= 1 << (i % 64);
        }
        let summary = vec![0b1111u64];
        let global = MaskView::Words {
            words: &words,
            summary: &summary,
        };
        let mut scratch = ShardMaskScratch::new();
        // Shard of racks 1..3 (machines 64..192): sees 64→0, 100→36.
        let v = scratch.rebase(global, 64, 128);
        assert!(v.test(0) && v.test(36));
        assert!(!v.test(3) && !v.test(64 + 36));
        assert!(v.any_in_range(0, 64));
        assert!(!v.any_in_range(64, 64), "rack 2 is empty in this shard");
        // Final shard (machines 192..200): 199→7.
        let mut scratch2 = ShardMaskScratch::new();
        let v = scratch2.rebase(global, 192, 8);
        assert!(v.test(7));
        assert!(!v.test(0));
        // A shard past the mask's width sees nothing (and must not panic).
        let mut scratch3 = ShardMaskScratch::new();
        let v = scratch3.rebase(global, 256, 64);
        assert!(!v.test(0));
        assert!(!v.any_in_range(0, 64));
        // All-mask passes through untouched.
        let mut scratch4 = ShardMaskScratch::new();
        assert!(matches!(
            scratch4.rebase(MaskView::All, 64, 128),
            MaskView::All
        ));
    }

    #[test]
    fn aggregates_maintained_bottom_up() {
        for prop in [Propagation::Eager, Propagation::Lazy] {
            let mut ix = MachineIndex::with_config(5, SearchMode::Heap, prop);
            ix.update(2, busy(3, 7.5, 1.25));
            ix.update(4, busy(1, 2.0, 2.0));
            ix.flush();
            assert_eq!(ix.stats(2).count, 3);
            assert_eq!(ix.inner[1].min_count, 0); // machines 0,1,3 empty
            assert_eq!(ix.inner[1].max_wsum, 7.5);
            assert_eq!(ix.inner[1].min_size, 1.25);
            ix.update(2, MachineStats::EMPTY);
            ix.flush();
            assert_eq!(ix.inner[1].max_wsum, 2.0);
            assert_eq!(ix.inner[1].min_size, 2.0);
        }
    }

    /// Satellite lock (PR 5): a flat-mode index must skip ancestor
    /// maintenance *entirely* — it allocates no internal-node array
    /// and no dirty bitmap, and arbitrary mutations leave both empty
    /// (the leaf table is the only state), while searches stay exact.
    #[test]
    fn flat_mode_never_touches_ancestors() {
        for prop in [Propagation::Eager, Propagation::Lazy] {
            let mut ix = MachineIndex::with_config(64, SearchMode::Flat, prop);
            assert!(ix.inner.is_empty(), "flat mode must allocate no ancestors");
            assert!(ix.dirty.is_empty(), "flat mode needs no dirty bitmap");
            let mut values = vec![None; 64];
            for i in 0..64 {
                ix.update(i, busy(1 + (i % 5) as u64, i as f64, 1.0 + (i % 3) as f64));
                values[i] = Some(((i * 37) % 19) as f64);
            }
            // Still no ancestor slot exists, let alone changed.
            assert!(ix.inner.is_empty());
            assert!(ix.dirty.is_empty());
            assert!(!ix.any_dirty);
            // And flush is a no-op that cannot panic.
            ix.flush();
            assert_eq!(search_exact(&mut ix, &values), linear_argmin(&values));
            // Leaf rows are written synchronously.
            assert_eq!(ix.stats(3).wsum, 3.0);
        }
    }

    /// Lazy repair must produce exactly the aggregates a from-scratch
    /// rebuild would, across interleaved mutations and searches —
    /// including dirty runs that span the 64-machine bitmap word
    /// boundary.
    #[test]
    fn lazy_repair_matches_eager_and_rebuild() {
        for m in [5usize, 63, 64, 65, 130, 200] {
            let mut lazy = MachineIndex::with_config(m, SearchMode::Heap, Propagation::Lazy);
            let mut eager = MachineIndex::with_config(m, SearchMode::Heap, Propagation::Eager);
            let mut shadow = vec![MachineStats::EMPTY; m];
            let mut state = 0x5EED ^ (m as u64);
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for round in 0..40 {
                // A burst of mutations (biased to straddle word
                // boundaries when m allows), then one search.
                for _ in 0..(1 + next() % 7) {
                    let i = if m > 66 && next() % 2 == 0 {
                        62 + (next() % 6) as usize // 62..68: spans words 0/1
                    } else {
                        (next() % m as u64) as usize
                    };
                    let s = busy(next() % 9, (next() % 50) as f64 / 4.0, 1.0);
                    lazy.update(i, s);
                    eager.update(i, s);
                    shadow[i] = s;
                }
                let values: Vec<Option<f64>> = shadow
                    .iter()
                    .map(|s| (s.count % 3 != 0).then_some(s.wsum + s.count as f64))
                    .collect();
                let expected = linear_argmin(&values);
                let got_lazy = search_exact(&mut lazy, &values);
                let got_eager = search_exact(&mut eager, &values);
                assert_eq!(got_lazy, expected, "m={m} round={round} lazy");
                assert_eq!(got_eager, expected, "m={m} round={round} eager");
                // After the search-triggered repair the internal nodes
                // must equal a from-scratch rebuild's, slot for slot.
                let mut fresh = MachineIndex::with_config(m, SearchMode::Heap, Propagation::Eager);
                for (i, s) in shadow.iter().enumerate() {
                    fresh.update(i, *s);
                }
                assert_eq!(lazy.inner, fresh.inner, "m={m} round={round}");
                assert_eq!(eager.inner, fresh.inner, "m={m} round={round}");
            }
        }
    }

    /// The sparse set-bit walk must answer correctly *without*
    /// repairing dirty ancestors (it reads the leaf table only).
    #[test]
    fn sparse_walk_skips_repair() {
        let m = 1024;
        let mut ix = MachineIndex::with_config(m, SearchMode::Heap, Propagation::Lazy);
        for i in 0..m {
            ix.update(i, busy(1 + (i % 4) as u64, i as f64, 1.0));
        }
        assert!(ix.any_dirty);
        // A 16-machine mask: sparse walk territory.
        let mut words = vec![0u64; m / 64];
        for g in 0..16 {
            words[g] |= 1 << 7;
        }
        let mut summary = vec![0u64; 1];
        for (k, w) in words.iter().enumerate() {
            if *w != 0 {
                summary[0] |= 1 << k;
            }
        }
        let values: Vec<Option<f64>> = (0..m)
            .map(|i| (i % 64 == 7 && i / 64 < 16).then(|| ((i * 13) % 29) as f64))
            .collect();
        let got = ix.search_masked(
            MaskView::Words {
                words: &words,
                summary: &summary,
            },
            |_, _, _| 0.0,
            |i, _| values[i].unwrap_or(f64::INFINITY),
            |i| values[i],
        );
        assert_eq!(got, linear_argmin(&values));
        // Dirt untouched: the walk never looked at the internal tree.
        assert!(ix.any_dirty, "sparse walk must not trigger repair");
        // A dense (All-mask) search then repairs and still agrees.
        let dense: Vec<Option<f64>> = (0..m).map(|i| Some(((i * 31) % 97) as f64)).collect();
        let got = search_exact(&mut ix, &dense);
        assert_eq!(got, linear_argmin(&dense));
        assert!(!ix.any_dirty);
    }

    #[test]
    fn search_finds_lowest_index_argmin_on_ties() {
        for m in [1usize, 2, 3, 7, 8, 9, 30] {
            let mut ix = MachineIndex::new(m);
            // All machines tie at 5.0 → index 0 must win.
            let values: Vec<Option<f64>> = vec![Some(5.0); m];
            assert_eq!(search_exact(&mut ix, &values), Some((0, 5.0)));
            // A strict winner beats an earlier tie.
            if m >= 3 {
                let mut v = vec![Some(5.0); m];
                v[m - 1] = Some(4.0);
                assert_eq!(search_exact(&mut ix, &v), Some((m - 1, 4.0)));
            }
        }
    }

    #[test]
    fn search_skips_ineligible_and_handles_none() {
        let mut ix = MachineIndex::new(4);
        let values = vec![None, Some(9.0), None, Some(9.0)];
        assert_eq!(search_exact(&mut ix, &values), Some((1, 9.0)));
        let none: Vec<Option<f64>> = vec![None; 4];
        assert_eq!(search_exact(&mut ix, &none), None);
    }

    #[test]
    fn loose_bounds_never_change_the_answer() {
        // Deterministic pseudo-random cross-check: arbitrary stats,
        // arbitrary values, bounds that understate by varying slack.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let m = 1 + (next() % 33) as usize;
            let values: Vec<Option<f64>> = (0..m)
                .map(|_| {
                    if next() % 5 == 0 {
                        None
                    } else {
                        Some((next() % 1000) as f64 / 10.0)
                    }
                })
                .collect();
            let slack = (next() % 50) as f64 / 10.0;
            let mut ix = MachineIndex::new(m);
            let expected = linear_argmin(&values);
            let got = ix.search(
                |_, _, _| 0.0,
                |i, _| values[i].map_or(f64::INFINITY, |v| (v - slack).max(0.0)),
                |i| values[i],
            );
            assert_eq!(got, expected, "trial {trial} m {m} slack {slack}");
        }
    }

    #[test]
    fn pruning_skips_exact_evaluations() {
        // One cheap machine among many expensive ones: with tight
        // bounds, the search must not evaluate every leaf. (Heap mode
        // explicitly — m = 64 auto-selects the flat scan.)
        let m = 64;
        let mut ix = MachineIndex::with_mode(m, SearchMode::Heap);
        for i in 0..m {
            ix.update(
                i,
                if i == 5 {
                    MachineStats::EMPTY
                } else {
                    busy(10, 100.0, 10.0)
                },
            );
        }
        let mut evals = 0usize;
        let got = ix.search(
            // Bound from stats: empty queues promise 1.0, busy ones 50.0.
            |s, _, _| if s.min_count == 0 { 1.0 } else { 50.0 },
            |_, s| if s.count == 0 { 1.0 } else { 50.0 },
            |i| {
                evals += 1;
                Some(if i == 5 { 1.0 } else { 50.0 })
            },
        );
        assert_eq!(got, Some((5, 1.0)));
        assert!(evals < m / 2, "pruning ineffective: {evals} evals");
    }

    /// Range-aware node bounds: the search hands every node its
    /// `(lo, span)` machine range, so callers can tighten bounds with
    /// range-local data (the rack-p̂ mechanism). Tightening a bound
    /// must never change the answer — only the number of exact
    /// evaluations.
    #[test]
    fn range_aware_bounds_prune_more_but_agree() {
        let m = 512;
        // Exact values: machines in [256, 320) are cheap (value 1+…),
        // everyone else expensive (100+…) — but a *global* lower bound
        // cannot see that.
        let value = |i: usize| {
            if (256..320).contains(&i) {
                1.0 + (i % 7) as f64 * 0.1
            } else {
                100.0 + (i % 7) as f64 * 0.1
            }
        };
        let mut blind_evals = 0usize;
        let mut ranged_evals = 0usize;
        let mut ix = MachineIndex::with_mode(m, SearchMode::Heap);
        let blind = ix.search(
            |_, _, _| 1.0, // global: every subtree promises the best case
            |_, _| 1.0,
            |i| {
                blind_evals += 1;
                Some(value(i))
            },
        );
        let ranged = ix.search(
            |_, lo, span| {
                // Range-local: only ranges overlapping [256, 320) may
                // contain a cheap machine.
                if lo < 320 && lo + span > 256 {
                    1.0
                } else {
                    100.0
                }
            },
            |i, _| if (256..320).contains(&i) { 1.0 } else { 100.0 },
            |i| {
                ranged_evals += 1;
                Some(value(i))
            },
        );
        let values: Vec<Option<f64>> = (0..m).map(|i| Some(value(i))).collect();
        assert_eq!(blind, ranged);
        assert_eq!(blind, linear_argmin(&values));
        assert!(
            ranged_evals < blind_evals,
            "range bounds should prune more: {ranged_evals} vs {blind_evals}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_panics() {
        let _ = MachineIndex::new(0);
    }

    #[test]
    fn mode_auto_selection_follows_the_crossover() {
        assert_eq!(MachineIndex::new(1).mode(), SearchMode::Flat);
        assert_eq!(
            MachineIndex::new(FLAT_MAX_MACHINES).mode(),
            SearchMode::Flat
        );
        assert_eq!(
            MachineIndex::new(FLAT_MAX_MACHINES + 1).mode(),
            SearchMode::Heap
        );
        // The propagation default round-trips like the dispatch one.
        assert_eq!(MachineIndex::new(8).propagation(), Propagation::Lazy);
        set_default_propagation(Propagation::Eager);
        assert_eq!(MachineIndex::new(8).propagation(), Propagation::Eager);
        set_default_propagation(Propagation::Lazy);
        assert_eq!(default_propagation(), Propagation::Lazy);
    }

    /// Deterministic xorshift for the randomized cross-checks below.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Satellite lock for the flat bound-scan variant: at the
    /// crossover boundary (m = 63, 64, 65) the flat pass, the heap
    /// search, and the exhaustive linear reference must return the
    /// identical `(value, index)` — including ties, `None`s, and
    /// deliberately slack bounds.
    #[test]
    fn flat_and_heap_agree_at_the_crossover_boundary() {
        for m in [
            FLAT_MAX_MACHINES - 1,
            FLAT_MAX_MACHINES,
            FLAT_MAX_MACHINES + 1,
        ] {
            let mut state = 0xC0FFEE ^ ((m as u64) << 17);
            for trial in 0..50 {
                // Tie-heavy value set (values from a small grid, ~1/6
                // ineligible) with random per-trial bound slack.
                let values: Vec<Option<f64>> = (0..m)
                    .map(|_| {
                        if xorshift(&mut state).is_multiple_of(6) {
                            None
                        } else {
                            Some((xorshift(&mut state) % 8) as f64)
                        }
                    })
                    .collect();
                let slack = (xorshift(&mut state) % 30) as f64 / 10.0;
                let expected = linear_argmin(&values);
                for mode in [SearchMode::Flat, SearchMode::Heap] {
                    let mut ix = MachineIndex::with_mode(m, mode);
                    let got = ix.search(
                        |_, _, _| 0.0,
                        |i, _| values[i].map_or(f64::INFINITY, |v| (v - slack).max(0.0)),
                        |i| values[i],
                    );
                    assert_eq!(got, expected, "m={m} trial={trial} mode={mode:?}");
                }
                // The auto-selected mode agrees too (whichever it is).
                let mut ix = MachineIndex::new(m);
                let got = ix.search(|_, _, _| 0.0, |_, _| 0.0, |i| values[i]);
                assert_eq!(got, expected, "m={m} trial={trial} auto");
            }
        }
    }

    /// Builds the two word layers of a stride mask: machine `i`
    /// eligible iff `i % groups == g`.
    fn stride_mask(m: usize, groups: usize, g: usize) -> (Vec<u64>, Vec<u64>) {
        let mut words = vec![0u64; m.div_ceil(64)];
        for i in (g..m).step_by(groups) {
            words[i / 64] |= 1 << (i % 64);
        }
        let mut summary = vec![0u64; words.len().div_ceil(64)];
        for (k, w) in words.iter().enumerate() {
            if *w != 0 {
                summary[k / 64] |= 1 << (k % 64);
            }
        }
        (words, summary)
    }

    #[test]
    fn mask_view_range_intersection_is_exact() {
        // Small strided mask: every aligned range answer must equal
        // the brute-force bit scan.
        let m = 200;
        let (words, summary) = stride_mask(m, 7, 3);
        let mask = MaskView::Words {
            words: &words,
            summary: &summary,
        };
        let cap = m.next_power_of_two();
        let mut span = cap;
        while span >= 1 {
            for lo in (0..cap).step_by(span) {
                let expect = (lo..lo + span).any(|i| i < m && i % 7 == 3);
                assert_eq!(mask.any_in_range(lo, span), expect, "lo={lo} span={span}");
            }
            span /= 2;
        }
        // Ranges entirely past the mask words are empty, not a panic.
        assert!(!mask.any_in_range(256, 256));
        assert!(MaskView::All.any_in_range(0, 1 << 20));
    }

    #[test]
    fn mask_view_summary_layer_handles_big_spans() {
        // m = 8192: spans above 4096 exercise the summary *scan* arm,
        // spans in (64, 4096] the single-summary-word arm.
        let m = 8192;
        // Only machines 6000..6064 eligible — a single hot word region.
        let mut words = vec![0u64; m / 64];
        for i in 6000..6064 {
            words[i / 64] |= 1 << (i % 64);
        }
        let mut summary = vec![0u64; words.len().div_ceil(64)];
        for (k, w) in words.iter().enumerate() {
            if *w != 0 {
                summary[k / 64] |= 1 << (k % 64);
            }
        }
        let mask = MaskView::Words {
            words: &words,
            summary: &summary,
        };
        assert!(mask.any_in_range(0, 8192));
        assert!(mask.any_in_range(4096, 4096));
        assert!(!mask.any_in_range(0, 4096));
        assert!(mask.any_in_range(4096, 2048));
        assert!(!mask.any_in_range(6144, 2048));
        assert!(mask.any_in_range(5888, 256));
        assert!(mask.test(6000) && !mask.test(5999));
    }

    /// The mask-guided descent must (a) return exactly the unmasked
    /// answer when masked-out machines evaluate to `None` anyway, and
    /// (b) never descend into — bound, or exactly evaluate — a
    /// mask-empty subtree.
    #[test]
    fn masked_search_skips_ineligible_subtrees_in_both_modes() {
        // Eligible counts straddle the sparse fast path's threshold:
        // 64/8 and 512/16 stay at or below FLAT_MAX_MACHINES (bit-walk
        // arm), 2048/16 = 128 eligible exceeds it (true mask-guided
        // heap descent).
        for (m, groups) in [(64usize, 8usize), (512, 16), (2_048, 16)] {
            for g in [0, groups - 1] {
                let (words, summary) = stride_mask(m, groups, g);
                let mut values: Vec<Option<f64>> = vec![None; m];
                let mut state = 0xABCDEF ^ (m * groups + g) as u64;
                for i in (g..m).step_by(groups) {
                    values[i] = Some((xorshift(&mut state) % 100) as f64 / 7.0);
                }
                let expected = linear_argmin(&values);
                for mode in [SearchMode::Flat, SearchMode::Heap] {
                    let mut ix = MachineIndex::with_mode(m, mode);
                    for i in 0..m {
                        ix.update(i, busy(1 + (i % 3) as u64, 4.0, 1.0));
                    }
                    let mut evals = 0usize;
                    let got = ix.search_masked(
                        MaskView::Words {
                            words: &words,
                            summary: &summary,
                        },
                        |_, _, _| 0.0,
                        |_, _| 0.0,
                        |i| {
                            evals += 1;
                            assert_eq!(i % groups, g, "evaluated a masked-out machine");
                            values[i]
                        },
                    );
                    assert_eq!(got, expected, "m={m} g={g} mode={mode:?}");
                    assert!(
                        evals <= m / groups,
                        "m={m} g={g} mode={mode:?}: {evals} evals > eligible count"
                    );
                }
            }
        }
    }

    /// From-scratch rebuild oracle for the resize tests: a fresh index
    /// of the given width whose liveness and leaf rows are installed
    /// directly (bypassing the incremental paths), then aggregated
    /// bottom-up — exactly what "tear it down and rebuild" would
    /// produce after any churn history.
    fn rebuild_oracle(live: &[Option<MachineStats>], mode: SearchMode) -> MachineIndex {
        let mut ix = MachineIndex::with_config(live.len(), mode, Propagation::Eager);
        for (i, s) in live.iter().enumerate() {
            match s {
                Some(s) => ix.leaves[i] = *s,
                None => {
                    ix.dead[i / 64] |= 1u64 << (i % 64);
                    ix.tombstones += 1;
                }
            }
        }
        if mode == SearchMode::Heap {
            for k in (1..ix.cap).rev() {
                ix.recompute(k as u32);
            }
        }
        ix
    }

    /// Satellite lock (PR 6): the incremental resize paths —
    /// grow-by-rack joins, in-place tombstones for drain/crash,
    /// auto- and explicit compaction — interleaved with updates and
    /// searches must stay bit-identical to the rebuild oracle (inner
    /// array slot for slot) and to the exhaustive linear reference
    /// (search results), at the flat/heap crossover boundary, in all
    /// four mode × propagation variants.
    #[test]
    fn resize_interleaving_matches_rebuild_oracle() {
        for m0 in [63usize, 64, 65] {
            for mode in [SearchMode::Flat, SearchMode::Heap] {
                for prop in [Propagation::Eager, Propagation::Lazy] {
                    let mut ix = MachineIndex::with_config(m0, mode, prop);
                    // Shadow truth: Some(stats) = live, None = dead.
                    // May extend beyond the index width after a
                    // compact (those entries are all dead).
                    let mut shadow: Vec<Option<MachineStats>> = vec![Some(MachineStats::EMPTY); m0];
                    let mut state =
                        0xE1A5_7100 ^ ((m0 as u64) << 8) ^ ((mode == SearchMode::Flat) as u64);
                    for round in 0..150 {
                        match xorshift(&mut state) % 10 {
                            0..=3 => {
                                // update a random live machine
                                let live: Vec<usize> = (0..ix.len())
                                    .filter(|&i| shadow.get(i).is_some_and(|s| s.is_some()))
                                    .collect();
                                if let Some(&i) =
                                    live.get((xorshift(&mut state) as usize) % live.len().max(1))
                                {
                                    let s = busy(
                                        xorshift(&mut state) % 9,
                                        (xorshift(&mut state) % 50) as f64 / 4.0,
                                        1.0 + (xorshift(&mut state) % 3) as f64,
                                    );
                                    ix.update(i, s);
                                    shadow[i] = Some(s);
                                }
                            }
                            4 | 5 => {
                                // drain/crash a random machine (no-op if dead
                                // or already compacted away)
                                let i = (xorshift(&mut state) as usize) % shadow.len();
                                if i < ix.len() {
                                    assert_eq!(ix.tombstone(i), shadow[i].is_some());
                                } else {
                                    assert!(!ix.tombstone(i), "beyond-width tombstone must no-op");
                                }
                                shadow[i] = None;
                            }
                            6 | 7 => {
                                // re-join a dead machine within the width
                                let dead: Vec<usize> = (0..ix.len())
                                    .filter(|&i| shadow.get(i).is_none_or(|s| s.is_none()))
                                    .collect();
                                if !dead.is_empty() {
                                    let i = dead[(xorshift(&mut state) as usize) % dead.len()];
                                    let s = busy(xorshift(&mut state) % 4, 2.0, 1.5);
                                    ix.join(i, s);
                                    if i >= shadow.len() {
                                        shadow.resize(i + 1, None);
                                    }
                                    shadow[i] = Some(s);
                                }
                            }
                            8 => {
                                // join beyond the width: grow-by-rack
                                let i = ix.len() + (xorshift(&mut state) as usize) % 40;
                                let s = busy(1, 3.0, 2.0);
                                ix.join(i, s);
                                if i >= shadow.len() {
                                    shadow.resize(i + 1, None);
                                }
                                shadow[i] = Some(s);
                            }
                            _ => {
                                ix.compact();
                            }
                        }
                        // The shadow beyond the (possibly compacted)
                        // width must be all-dead; the width itself may
                        // lag the shadow only by dead entries.
                        for (i, s) in shadow.iter().enumerate().skip(ix.len()) {
                            assert!(s.is_none(), "live machine {i} beyond width {}", ix.len());
                        }
                        if shadow.len() < ix.len() {
                            shadow.resize(ix.len(), None);
                        }
                        let width = ix.len();
                        assert_eq!(
                            ix.live_count(),
                            shadow[..width].iter().filter(|s| s.is_some()).count(),
                            "m0={m0} round={round}"
                        );

                        // Search agreement with the linear reference
                        // over live machines (every ~1/5 value is
                        // ineligible to exercise None handling).
                        let values: Vec<Option<f64>> = (0..width)
                            .map(|i| match shadow[i] {
                                None => None,
                                Some(s) => (!(s.count + i as u64).is_multiple_of(5))
                                    .then_some(s.wsum + (i % 13) as f64),
                            })
                            .collect();
                        assert_eq!(
                            search_exact(&mut ix, &values),
                            linear_argmin(&values),
                            "m0={m0} mode={mode:?} prop={prop:?} round={round}"
                        );

                        // Rebuild-oracle byte-identity: same width,
                        // capacity, liveness, leaf rows, and (after
                        // the search-triggered flush above) the same
                        // internal aggregates slot for slot.
                        let oracle = rebuild_oracle(&shadow[..width], mode);
                        assert_eq!(ix.m, oracle.m);
                        assert_eq!(ix.cap, oracle.cap, "m0={m0} round={round}");
                        assert_eq!(ix.dead, oracle.dead);
                        assert_eq!(ix.tombstones, oracle.tombstones);
                        assert_eq!(
                            ix.leaves, oracle.leaves,
                            "m0={m0} mode={mode:?} prop={prop:?} round={round}"
                        );
                        assert_eq!(
                            ix.inner, oracle.inner,
                            "m0={m0} mode={mode:?} prop={prop:?} round={round}"
                        );
                    }
                }
            }
        }
    }

    /// Grow-by-rack granularity and the cap-doubling graft: joining
    /// one machine beyond the width extends the leaf table to the next
    /// 64-machine word (revealed machines tombstoned), and the old
    /// internal tree survives the graft bit for bit.
    #[test]
    fn join_grows_by_rack_and_grafts() {
        let mut ix = MachineIndex::with_config(5, SearchMode::Heap, Propagation::Eager);
        for i in 0..5 {
            ix.update(i, busy(2 + i as u64, i as f64, 1.0));
        }
        let before_root = ix.inner[1];
        ix.join(70, busy(1, 0.5, 0.5));
        // Width rounds to the rack containing 70; cap doubles 8 → 128.
        assert_eq!(ix.len(), 128);
        assert_eq!(ix.cap, 128);
        assert!(ix.is_tombstoned(5), "revealed machines start tombstoned");
        assert!(ix.is_tombstoned(127));
        assert!(!ix.is_tombstoned(70));
        assert_eq!(ix.live_count(), 6);
        // The grafted left subtree still aggregates the old machines;
        // the root now also sees machine 70's row.
        assert_eq!(ix.inner[1].min_wsum, 0.0); // machine 0's wsum
        assert_eq!(ix.inner[1].min_size, 0.5);
        let _ = before_root;
        // Search still finds the lowest-index argmin across the pool.
        let values: Vec<Option<f64>> = (0..128)
            .map(|i| (!ix.is_tombstoned(i)).then_some(((i * 7) % 11) as f64))
            .collect();
        assert_eq!(search_exact(&mut ix, &values), linear_argmin(&values));
    }

    /// Tombstoning a whole trailing rack auto-compacts; interior
    /// tombstones are left in place (ids are immovable).
    #[test]
    fn trailing_rack_tombstones_auto_compact() {
        let mut ix = MachineIndex::with_config(130, SearchMode::Heap, Propagation::Lazy);
        // Kill an interior machine: no compaction.
        assert!(ix.tombstone(40));
        assert_eq!(ix.len(), 130);
        // Kill the top 66 machines: once the trailing dead run reaches
        // a full rack (at machine 66) the index trims back to the last
        // live leaf; the final two tombstones never re-reach a rack.
        for i in (64..130).rev() {
            ix.tombstone(i);
        }
        assert_eq!(ix.len(), 66, "auto-compacted at the rack boundary");
        // An explicit compact trims the rest of the dead tail.
        ix.compact();
        assert_eq!(ix.len(), 64, "compacted to the last live leaf + 1");
        assert_eq!(ix.cap, 64);
        assert!(ix.is_tombstoned(40), "interior tombstone survives");
        assert_eq!(ix.live_count(), 63);
        // The compacted index still answers exactly.
        let values: Vec<Option<f64>> = (0..64)
            .map(|i| (i != 40).then_some(((i * 5) % 17) as f64))
            .collect();
        assert_eq!(search_exact(&mut ix, &values), linear_argmin(&values));
        // And a machine can re-join where the tail used to be.
        ix.join(129, busy(0, 0.0, f64::INFINITY));
        assert_eq!(ix.len(), 192);
        assert!(!ix.is_tombstoned(129));
    }

    /// Compacting an all-dead pool keeps one (tombstoned) leaf, and
    /// every search over it returns `None`.
    #[test]
    fn all_dead_pool_compacts_to_one_leaf() {
        for mode in [SearchMode::Flat, SearchMode::Heap] {
            let mut ix = MachineIndex::with_config(10, mode, Propagation::Lazy);
            for i in 0..10 {
                ix.tombstone(i);
            }
            ix.compact();
            assert_eq!(ix.len(), 1);
            assert_eq!(ix.live_count(), 0);
            assert_eq!(ix.tombstone_count(), 1);
            let got = ix.search(|_, _, _| 0.0, |_, _| 0.0, |_| Some(1.0));
            assert_eq!(got, None, "{mode:?}: tombstoned leaves never win");
            // Rejoining revives the pool.
            ix.join(0, MachineStats::EMPTY);
            let got = ix.search(|_, _, _| 0.0, |_, _| 0.0, |_| Some(1.0));
            assert_eq!(got, Some((0, 1.0)));
        }
    }

    /// The ops snapshot attributes each search to the arm that
    /// answered it and reports the lazy-repair backlog.
    #[test]
    fn index_stats_track_the_search_path_mix() {
        // Flat mode, dense mask → flat arm.
        let mut flat = MachineIndex::with_mode(16, SearchMode::Flat);
        let _ = flat.search(|_, _, _| 0.0, |_, _| 0.0, |i| Some(i as f64));
        let s = flat.index_stats();
        assert_eq!(
            (s.flat_searches, s.sparse_searches, s.heap_searches),
            (1, 0, 0)
        );
        assert_eq!(s.live, 16);
        assert_eq!(s.searches(), 1);

        // Heap mode: a sparse mask takes the bit walk (leaving dirt in
        // place), a dense search takes the heap descent (repairing it).
        let m = 256;
        let mut ix = MachineIndex::with_config(m, SearchMode::Heap, Propagation::Lazy);
        for i in 0..m {
            ix.update(i, busy(1, 1.0, 1.0));
        }
        assert_eq!(ix.index_stats().dirty_leaves, m);
        let (words, summary) = stride_mask(m, 64, 3);
        let _ = ix.search_masked(
            MaskView::Words {
                words: &words,
                summary: &summary,
            },
            |_, _, _| 0.0,
            |_, _| 0.0,
            |i| Some(i as f64),
        );
        let s = ix.index_stats();
        assert_eq!(
            (s.flat_searches, s.sparse_searches, s.heap_searches),
            (0, 1, 0)
        );
        assert_eq!(
            s.dirty_leaves, m,
            "sparse walk leaves the backlog untouched"
        );
        let _ = ix.search(|_, _, _| 0.0, |_, _| 0.0, |i| Some(i as f64));
        let s = ix.index_stats();
        assert_eq!(
            (s.flat_searches, s.sparse_searches, s.heap_searches),
            (0, 1, 1)
        );
        assert_eq!(s.dirty_leaves, 0, "heap descent repairs the backlog");

        // Shard snapshots merge componentwise.
        let mut merged = flat.index_stats();
        merged.merge(&s);
        assert_eq!(merged.searches(), 3);
        assert_eq!(merged.live, 16 + m);
    }

    /// A mask with no bits set short-circuits to `None` without work.
    #[test]
    fn empty_mask_returns_none() {
        let (words, summary) = (vec![0u64; 4], vec![0u64; 1]);
        for mode in [SearchMode::Flat, SearchMode::Heap] {
            let mut ix = MachineIndex::with_mode(200, mode);
            let got = ix.search_masked(
                MaskView::Words {
                    words: &words,
                    summary: &summary,
                },
                |_, _, _| 0.0,
                |_, _| 0.0,
                |_| -> Option<f64> { panic!("nothing to evaluate") },
            );
            assert_eq!(got, None);
        }
    }
}
