//! Tournament (segment) tree over per-machine dispatch statistics —
//! the engine behind the **best-first pruned argmin** that replaces the
//! schedulers' `O(m)`-per-arrival linear scan of `λ_ij`.
//!
//! ## The problem shape
//!
//! Every arrival must find `argmin_i λ_ij` over all `m` machines, with
//! ties broken towards the **lowest machine index** (the contract the
//! linear scan establishes and every downstream artifact depends on).
//! Evaluating one exact `λ_ij` is expensive — an `O(log n)` aggregate
//! query against the machine's pending queue (§2), or an `O(|U_i|)`
//! walk of the pending vector (§3 and the weighted extension). But a
//! *lower bound* on `λ_ij` is cheap: it needs only a few cached
//! per-machine scalars (pending count, pending weight sum, smallest
//! pending size) plus the arriving job's own parameters.
//!
//! ## The structure
//!
//! [`MachineIndex`] is a flat perfect binary tree (a tournament
//! bracket) with one leaf per machine. Each leaf holds that machine's
//! [`MachineStats`]; each internal node holds the componentwise
//! extremes ([`NodeStats`]) over its subtree, maintained in `O(log m)`
//! by [`MachineIndex::update`] whenever a pending queue changes.
//!
//! [`MachineIndex::search`] then runs a best-first branch-and-bound:
//! nodes are popped from a min-heap ordered by `(bound, first machine
//! index)`; leaves evaluate the exact `λ_ij` lazily; a node is pruned
//! as soon as its bound can no longer beat the best exact value found
//! (or can only tie it at a higher machine index). Because every
//! pruned subtree provably contains no better-or-lower-indexed
//! candidate, the result is **identical to the full linear scan** —
//! the caller supplies bounds that are true lower bounds (see the
//! callers in `osr-core::dispatch` for the floating-point-safety
//! argument), and the search itself degrades gracefully to visiting
//! every leaf when the bounds prune nothing.
//!
//! The caller-facing contract, precisely:
//!
//! * `node_bound(s)` must be `≤ leaf_bound(i, leaf_i)` for every leaf
//!   `i` under a node with aggregate stats `s`;
//! * `leaf_bound(i, s_i)` must be `≤ eval(i)` whenever `eval(i)` is
//!   `Some`;
//! * then `search` returns exactly
//!   `min_{i : eval(i).is_some()} (eval(i), i)` under lexicographic
//!   `(value, index)` order — the lowest-index argmin.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::total::TotalF64;

/// Cached dispatch statistics of one machine's pending queue.
///
/// All three schedulers derive their `λ_ij` lower bounds from these
/// three scalars (each scheduler uses the subset its formula needs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineStats {
    /// Number of pending jobs `|U_i|` (sans the running job).
    pub count: u64,
    /// Sum of pending weights (processing times in §2, where `w = p`).
    pub wsum: f64,
    /// Smallest pending size, or a lower bound on it
    /// (`f64::INFINITY` when the queue is empty). A *stale-low* value
    /// is allowed: bounds derived from it stay valid lower bounds.
    pub min_size: f64,
}

impl MachineStats {
    /// Stats of an empty pending queue.
    pub const EMPTY: MachineStats = MachineStats {
        count: 0,
        wsum: 0.0,
        min_size: f64::INFINITY,
    };
}

/// Componentwise extremes of [`MachineStats`] over a subtree.
///
/// `min_*` fields bound formulas that grow with the statistic;
/// `max_wsum` exists for the §3 bound, whose prefix-weight denominator
/// *shrinks* the bound as weight grows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStats {
    /// Minimum pending count over the subtree.
    pub min_count: u64,
    /// Minimum pending weight sum over the subtree.
    pub min_wsum: f64,
    /// Maximum pending weight sum over the subtree.
    pub max_wsum: f64,
    /// Minimum `min_size` over the subtree.
    pub min_size: f64,
}

impl NodeStats {
    /// Identity element for [`NodeStats::combine`] (used by padding
    /// leaves beyond `m`): neutral for every component given that real
    /// stats have `count ≥ 0`, `wsum ≥ 0`, `min_size ≤ ∞`.
    const IDENTITY: NodeStats = NodeStats {
        min_count: u64::MAX,
        min_wsum: f64::INFINITY,
        max_wsum: 0.0,
        min_size: f64::INFINITY,
    };

    fn leaf(s: MachineStats) -> NodeStats {
        NodeStats {
            min_count: s.count,
            min_wsum: s.wsum,
            max_wsum: s.wsum,
            min_size: s.min_size,
        }
    }

    fn combine(a: NodeStats, b: NodeStats) -> NodeStats {
        NodeStats {
            min_count: a.min_count.min(b.min_count),
            min_wsum: a.min_wsum.min(b.min_wsum),
            max_wsum: a.max_wsum.max(b.max_wsum),
            min_size: a.min_size.min(b.min_size),
        }
    }
}

/// Heap entry of the best-first search. Min-ordered by
/// `(bound, lo, node)` — the `lo` tiebreak makes the search reach the
/// lowest-index machine first among equal bounds, which is what lets
/// equal-bound subtrees to its right be pruned wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Frontier {
    bound: TotalF64,
    lo: u32,
    node: u32,
    span: u32,
}

/// Tournament tree over per-machine dispatch stats; see module docs.
#[derive(Debug)]
pub struct MachineIndex {
    m: usize,
    /// Leaf capacity: smallest power of two `≥ m`.
    cap: usize,
    /// Implicit tree: root at 1, children of `k` at `2k`/`2k+1`,
    /// leaf `i` at `cap + i`.
    nodes: Vec<NodeStats>,
    /// Reusable frontier heap (no per-search allocation once warm).
    heap: BinaryHeap<Reverse<Frontier>>,
}

impl MachineIndex {
    /// Index over `m` machines, all starting with empty queues.
    ///
    /// # Panics
    /// Panics when `m == 0` (instances always have a machine).
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "MachineIndex needs at least one machine");
        let cap = m.next_power_of_two();
        let mut nodes = vec![NodeStats::IDENTITY; 2 * cap];
        for leaf in 0..m {
            nodes[cap + leaf] = NodeStats::leaf(MachineStats::EMPTY);
        }
        for k in (1..cap).rev() {
            nodes[k] = NodeStats::combine(nodes[2 * k], nodes[2 * k + 1]);
        }
        MachineIndex {
            m,
            cap,
            nodes,
            heap: BinaryHeap::new(),
        }
    }

    /// Number of machines indexed.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the index covers no machines (never true; see [`Self::new`]).
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Current leaf stats of machine `i` (aggregate view).
    pub fn stats(&self, i: usize) -> &NodeStats {
        &self.nodes[self.cap + i]
    }

    /// Replaces machine `i`'s stats and rebuilds the `O(log m)`
    /// ancestors. Call after every pending-queue mutation.
    pub fn update(&mut self, i: usize, stats: MachineStats) {
        debug_assert!(i < self.m);
        let mut k = self.cap + i;
        self.nodes[k] = NodeStats::leaf(stats);
        k /= 2;
        while k >= 1 {
            self.nodes[k] = NodeStats::combine(self.nodes[2 * k], self.nodes[2 * k + 1]);
            k /= 2;
        }
    }

    /// Best-first pruned argmin; see the module docs for the bound
    /// contract. Returns `(machine, exact value)` for the
    /// lowest-index machine minimizing `eval`, or `None` when `eval`
    /// returns `None` everywhere (no eligible machine).
    pub fn search<NB, LB, EV>(
        &mut self,
        node_bound: NB,
        leaf_bound: LB,
        mut eval: EV,
    ) -> Option<(usize, f64)>
    where
        NB: Fn(&NodeStats) -> f64,
        LB: Fn(usize, &NodeStats) -> f64,
        EV: FnMut(usize) -> Option<f64>,
    {
        // (value, index) under lexicographic order; `TotalF64` keeps
        // NaN-poisoned bounds from corrupting comparisons.
        let mut best: Option<(f64, usize)> = None;
        let beats = |cand: f64, idx: usize, best: &Option<(f64, usize)>| -> bool {
            match best {
                None => true,
                Some((bv, bi)) => match TotalF64(cand).cmp(&TotalF64(*bv)) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => idx < *bi,
                    std::cmp::Ordering::Greater => false,
                },
            }
        };

        self.heap.clear();
        self.heap.push(Reverse(Frontier {
            bound: TotalF64(node_bound(&self.nodes[1])),
            lo: 0,
            node: 1,
            span: self.cap as u32,
        }));

        while let Some(Reverse(e)) = self.heap.pop() {
            if let Some((bv, bi)) = best {
                // The heap is min-ordered by (bound, lo): once the head
                // cannot beat or lower-index-tie the incumbent, nothing
                // behind it can either.
                let cmp = e.bound.cmp(&TotalF64(bv));
                if cmp == std::cmp::Ordering::Greater
                    || (cmp == std::cmp::Ordering::Equal && e.lo as usize >= bi)
                {
                    break;
                }
            }
            if e.node as usize >= self.cap {
                let idx = e.node as usize - self.cap;
                if idx >= self.m {
                    continue; // padding leaf
                }
                let lb = leaf_bound(idx, &self.nodes[e.node as usize]);
                if !beats(lb, idx, &best) {
                    continue;
                }
                if let Some(val) = eval(idx) {
                    if beats(val, idx, &best) {
                        best = Some((val, idx));
                    }
                }
            } else {
                let half = e.span / 2;
                for (child, lo) in [(2 * e.node, e.lo), (2 * e.node + 1, e.lo + half)] {
                    let b = node_bound(&self.nodes[child as usize]);
                    if beats(b, lo as usize, &best) {
                        self.heap.push(Reverse(Frontier {
                            bound: TotalF64(b),
                            lo,
                            node: child,
                            span: half,
                        }));
                    }
                }
            }
        }
        best.map(|(v, i)| (i, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(count: u64, wsum: f64, min: f64) -> MachineStats {
        MachineStats {
            count,
            wsum,
            min_size: min,
        }
    }

    /// Exhaustive reference: lowest-index argmin over eval.
    fn linear_argmin(values: &[Option<f64>]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, v) in values.iter().enumerate() {
            if let Some(v) = v {
                if best.is_none_or(|(_, bv)| *v < bv) {
                    best = Some((i, *v));
                }
            }
        }
        best
    }

    /// Searches with bounds equal to the exact values (tightest legal).
    fn search_exact(ix: &mut MachineIndex, values: &[Option<f64>]) -> Option<(usize, f64)> {
        // Node bound: no per-leaf info, so use the global min value —
        // a legal (if clairvoyant) lower bound.
        let global = values
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        ix.search(
            |_| global,
            |i, _| values[i].unwrap_or(f64::INFINITY),
            |i| values[i],
        )
    }

    #[test]
    fn aggregates_maintained_bottom_up() {
        let mut ix = MachineIndex::new(5);
        ix.update(2, busy(3, 7.5, 1.25));
        ix.update(4, busy(1, 2.0, 2.0));
        assert_eq!(ix.stats(2).min_count, 3);
        assert_eq!(ix.nodes[1].min_count, 0); // machines 0,1,3 empty
        assert_eq!(ix.nodes[1].max_wsum, 7.5);
        assert_eq!(ix.nodes[1].min_size, 1.25);
        ix.update(2, MachineStats::EMPTY);
        assert_eq!(ix.nodes[1].max_wsum, 2.0);
        assert_eq!(ix.nodes[1].min_size, 2.0);
    }

    #[test]
    fn search_finds_lowest_index_argmin_on_ties() {
        for m in [1usize, 2, 3, 7, 8, 9, 30] {
            let mut ix = MachineIndex::new(m);
            // All machines tie at 5.0 → index 0 must win.
            let values: Vec<Option<f64>> = vec![Some(5.0); m];
            assert_eq!(search_exact(&mut ix, &values), Some((0, 5.0)));
            // A strict winner beats an earlier tie.
            if m >= 3 {
                let mut v = vec![Some(5.0); m];
                v[m - 1] = Some(4.0);
                assert_eq!(search_exact(&mut ix, &v), Some((m - 1, 4.0)));
            }
        }
    }

    #[test]
    fn search_skips_ineligible_and_handles_none() {
        let mut ix = MachineIndex::new(4);
        let values = vec![None, Some(9.0), None, Some(9.0)];
        assert_eq!(search_exact(&mut ix, &values), Some((1, 9.0)));
        let none: Vec<Option<f64>> = vec![None; 4];
        assert_eq!(search_exact(&mut ix, &none), None);
    }

    #[test]
    fn loose_bounds_never_change_the_answer() {
        // Deterministic pseudo-random cross-check: arbitrary stats,
        // arbitrary values, bounds that understate by varying slack.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let m = 1 + (next() % 33) as usize;
            let values: Vec<Option<f64>> = (0..m)
                .map(|_| {
                    if next() % 5 == 0 {
                        None
                    } else {
                        Some((next() % 1000) as f64 / 10.0)
                    }
                })
                .collect();
            let slack = (next() % 50) as f64 / 10.0;
            let mut ix = MachineIndex::new(m);
            let expected = linear_argmin(&values);
            let got = ix.search(
                |_| 0.0,
                |i, _| values[i].map_or(f64::INFINITY, |v| (v - slack).max(0.0)),
                |i| values[i],
            );
            assert_eq!(got, expected, "trial {trial} m {m} slack {slack}");
        }
    }

    #[test]
    fn pruning_skips_exact_evaluations() {
        // One cheap machine among many expensive ones: with tight
        // bounds, the search must not evaluate every leaf.
        let m = 64;
        let mut ix = MachineIndex::new(m);
        for i in 0..m {
            ix.update(
                i,
                if i == 5 {
                    MachineStats::EMPTY
                } else {
                    busy(10, 100.0, 10.0)
                },
            );
        }
        let mut evals = 0usize;
        let got = ix.search(
            // Bound from stats: empty queues promise 1.0, busy ones 50.0.
            |s| if s.min_count == 0 { 1.0 } else { 50.0 },
            |_, s| if s.min_count == 0 { 1.0 } else { 50.0 },
            |i| {
                evals += 1;
                Some(if i == 5 { 1.0 } else { 50.0 })
            },
        );
        assert_eq!(got, Some((5, 1.0)));
        assert!(evals < m / 2, "pruning ineffective: {evals} evals");
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_panics() {
        let _ = MachineIndex::new(0);
    }
}
