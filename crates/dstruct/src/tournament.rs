//! Tournament (segment) tree over per-machine dispatch statistics —
//! the engine behind the **best-first pruned argmin** that replaces the
//! schedulers' `O(m)`-per-arrival linear scan of `λ_ij`.
//!
//! ## The problem shape
//!
//! Every arrival must find `argmin_i λ_ij` over all `m` machines, with
//! ties broken towards the **lowest machine index** (the contract the
//! linear scan establishes and every downstream artifact depends on).
//! Evaluating one exact `λ_ij` is expensive — an `O(log n)` aggregate
//! query against the machine's pending queue (§2), or an `O(|U_i|)`
//! walk of the pending vector (§3 and the weighted extension). But a
//! *lower bound* on `λ_ij` is cheap: it needs only a few cached
//! per-machine scalars (pending count, pending weight sum, smallest
//! pending size) plus the arriving job's own parameters.
//!
//! ## The structure
//!
//! [`MachineIndex`] is a flat perfect binary tree (a tournament
//! bracket) with one leaf per machine. Each leaf holds that machine's
//! [`MachineStats`]; each internal node holds the componentwise
//! extremes ([`NodeStats`]) over its subtree, maintained in `O(log m)`
//! by [`MachineIndex::update`] whenever a pending queue changes.
//!
//! [`MachineIndex::search`] then runs a best-first branch-and-bound:
//! nodes are popped from a min-heap ordered by `(bound, first machine
//! index)`; leaves evaluate the exact `λ_ij` lazily; a node is pruned
//! as soon as its bound can no longer beat the best exact value found
//! (or can only tie it at a higher machine index). Because every
//! pruned subtree provably contains no better-or-lower-indexed
//! candidate, the result is **identical to the full linear scan** —
//! the caller supplies bounds that are true lower bounds (see the
//! callers in `osr-core::dispatch` for the floating-point-safety
//! argument), and the search itself degrades gracefully to visiting
//! every leaf when the bounds prune nothing.
//!
//! The caller-facing contract, precisely:
//!
//! * `node_bound(s)` must be `≤ leaf_bound(i, leaf_i)` for every leaf
//!   `i` under a node with aggregate stats `s`;
//! * `leaf_bound(i, s_i)` must be `≤ eval(i)` whenever `eval(i)` is
//!   `Some`;
//! * then `search` returns exactly
//!   `min_{i : eval(i).is_some()} (eval(i), i)` under lexicographic
//!   `(value, index)` order — the lowest-index argmin.
//!
//! ## Eligibility masks ([`MachineIndex::search_masked`])
//!
//! On restricted-assignment and rack-affinity workloads most machines
//! cannot run the arriving job at all, yet the subtree bounds above are
//! **eligibility-blind**: they are built from queue statistics and the
//! job's *best-case* size `p̂`, so a subtree consisting entirely of
//! ineligible machines still advertises an attractive bound and the
//! search descends into it, discovering the `∞`s one leaf at a time.
//! [`MachineIndex::search_masked`] takes an additional [`MaskView`] —
//! a borrowed two-layer bitmask (one bit per machine plus a summary
//! bit per 64-bit word) — and skips any subtree whose machine range
//! has an empty intersection with the mask. Because every node's range
//! is a power-of-two span aligned to its size, the intersection test
//! is a **single masked word read** for spans up to 64 machines and a
//! single *summary*-word read for spans up to 4096; only spans beyond
//! that (m > 4096) scan summary words, one per 4096 machines, with an
//! early exit. The mask contract mirrors the bound contract:
//!
//! * for every machine `i` **not** in the mask, `eval(i)` must return
//!   `None` (the mask may only exclude machines that could never win);
//! * then `search_masked` returns exactly what `search` would, while
//!   the descent cost scales with the *eligible* portion of the tree
//!   (for rack-affinity workloads: the eligible racks, not `m`).
//!
//! Sparser still than a rack? When the mask's population count is at
//! most [`FLAT_MAX_MACHINES`], `search_masked` skips the tree
//! entirely and walks the mask's set bits in increasing index order
//! (`O(words + eligible)` total, the linear scan's visit order and
//! tie-break), so a job eligible on 64 of 16384 machines costs what a
//! 64-machine dispatch costs.
//!
//! ## Flat bound-scan mode ([`SearchMode`])
//!
//! The best-first heap earns its keep at large `m`, where pruning
//! skips whole subtrees; at mid-size `m` (the recorded m ≈ 64
//! crossover, see BENCH.md) the `BinaryHeap` push/pop traffic costs
//! more than it saves. [`MachineIndex::new`] therefore auto-selects
//! [`SearchMode::Flat`] for `m ≤` [`FLAT_MAX_MACHINES`]: a single
//! left-to-right pass over the leaves with a running best, evaluating
//! a leaf exactly only when its cheap `leaf_bound` (and mask bit)
//! says it could still win. The pass visits leaves in increasing
//! index order and replaces the incumbent only on a strictly smaller
//! value, so its result — value *and* argmin index — is identical to
//! both the heap search and the plain linear scan.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::total::TotalF64;

/// Borrowed view of a per-job machine-eligibility bitmask, as consumed
/// by [`MachineIndex::search_masked`].
///
/// `words` holds one bit per machine (LSB-first within each `u64`);
/// `summary` holds one bit per *word* (`summary[k/64]` bit `k % 64` is
/// set iff `words[k] != 0`), which is what keeps the subtree
/// intersection test `O(1)` for spans up to 4096 machines. Machines at
/// or beyond `64 * words.len()` are ineligible (the padding leaves of
/// a [`MachineIndex`] always test ineligible).
#[derive(Debug, Clone, Copy)]
pub enum MaskView<'a> {
    /// Every machine is eligible — no pruning, no word reads.
    All,
    /// Restricted eligibility with the two word layers described above.
    Words {
        /// One bit per machine.
        words: &'a [u64],
        /// One bit per word of `words`.
        summary: &'a [u64],
    },
}

/// Any bit set in `bits[..]` within the aligned bit range
/// `[lo, lo + span)`? `span` must be a power of two and `lo` a
/// multiple of `span`; bits beyond the slice are absent (unset).
#[inline]
fn any_bits(bits: &[u64], lo: usize, span: usize) -> bool {
    debug_assert!(span.is_power_of_two() && lo.is_multiple_of(span));
    if span >= 64 {
        // Whole aligned words; early-exit scan (one word per 64 bits).
        let first = lo / 64;
        let last = ((lo + span) / 64).min(bits.len());
        bits[first.min(bits.len())..last].iter().any(|&w| w != 0)
    } else {
        // The range lies inside a single word (span divides 64 and lo
        // is span-aligned).
        match bits.get(lo / 64) {
            Some(&w) => w & ((u64::MAX >> (64 - span)) << (lo % 64)) != 0,
            None => false,
        }
    }
}

impl MaskView<'_> {
    /// Whether machine `i` is eligible.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        match self {
            MaskView::All => true,
            MaskView::Words { words, .. } => any_bits(words, i, 1),
        }
    }

    /// Whether any machine in the aligned range `[lo, lo + span)` is
    /// eligible (`span` a power of two, `lo` a multiple of `span` —
    /// exactly the ranges tournament nodes cover). `O(1)` for
    /// `span ≤ 4096`; one summary word per 4096 machines beyond, with
    /// an early exit.
    #[inline]
    pub fn any_in_range(&self, lo: usize, span: usize) -> bool {
        match self {
            MaskView::All => true,
            MaskView::Words { words, summary } => {
                if span <= 64 {
                    any_bits(words, lo, span)
                } else {
                    any_bits(summary, lo / 64, span / 64)
                }
            }
        }
    }
}

/// How [`MachineIndex`] locates the argmin internally. Results are
/// identical either way (same `(value, index)` bit for bit); the modes
/// trade constant factors, and [`MachineIndex::new`] picks by `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Single left-to-right pass over the leaves with a running best;
    /// no heap, no internal-node reads. Wins at mid-size `m` where
    /// heap traffic eats the pruning gain.
    Flat,
    /// Best-first bound-pruned descent with a `BinaryHeap` frontier.
    /// Wins at large `m`, where subtree pruning skips most leaves.
    Heap,
}

/// Largest machine count for which [`MachineIndex::new`] picks
/// [`SearchMode::Flat`]: at and below the recorded m ≈ 64 crossover
/// (BENCH.md "PR 2") the heap's push/pop traffic costs more than
/// bound-pruning saves, so the flat scan is the better constant.
pub const FLAT_MAX_MACHINES: usize = 64;

/// Cached dispatch statistics of one machine's pending queue.
///
/// All three schedulers derive their `λ_ij` lower bounds from these
/// three scalars (each scheduler uses the subset its formula needs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineStats {
    /// Number of pending jobs `|U_i|` (sans the running job).
    pub count: u64,
    /// Sum of pending weights (processing times in §2, where `w = p`).
    pub wsum: f64,
    /// Smallest pending size, or a lower bound on it
    /// (`f64::INFINITY` when the queue is empty). A *stale-low* value
    /// is allowed: bounds derived from it stay valid lower bounds.
    pub min_size: f64,
}

impl MachineStats {
    /// Stats of an empty pending queue.
    pub const EMPTY: MachineStats = MachineStats {
        count: 0,
        wsum: 0.0,
        min_size: f64::INFINITY,
    };
}

/// Componentwise extremes of [`MachineStats`] over a subtree.
///
/// `min_*` fields bound formulas that grow with the statistic;
/// `max_wsum` exists for the §3 bound, whose prefix-weight denominator
/// *shrinks* the bound as weight grows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStats {
    /// Minimum pending count over the subtree.
    pub min_count: u64,
    /// Minimum pending weight sum over the subtree.
    pub min_wsum: f64,
    /// Maximum pending weight sum over the subtree.
    pub max_wsum: f64,
    /// Minimum `min_size` over the subtree.
    pub min_size: f64,
}

impl NodeStats {
    /// Identity element for [`NodeStats::combine`] (used by padding
    /// leaves beyond `m`): neutral for every component given that real
    /// stats have `count ≥ 0`, `wsum ≥ 0`, `min_size ≤ ∞`.
    const IDENTITY: NodeStats = NodeStats {
        min_count: u64::MAX,
        min_wsum: f64::INFINITY,
        max_wsum: 0.0,
        min_size: f64::INFINITY,
    };

    fn leaf(s: MachineStats) -> NodeStats {
        NodeStats {
            min_count: s.count,
            min_wsum: s.wsum,
            max_wsum: s.wsum,
            min_size: s.min_size,
        }
    }

    fn combine(a: NodeStats, b: NodeStats) -> NodeStats {
        NodeStats {
            min_count: a.min_count.min(b.min_count),
            min_wsum: a.min_wsum.min(b.min_wsum),
            max_wsum: a.max_wsum.max(b.max_wsum),
            min_size: a.min_size.min(b.min_size),
        }
    }
}

/// Heap entry of the best-first search. Min-ordered by
/// `(bound, lo, node)` — the `lo` tiebreak makes the search reach the
/// lowest-index machine first among equal bounds, which is what lets
/// equal-bound subtrees to its right be pruned wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Frontier {
    bound: TotalF64,
    lo: u32,
    node: u32,
    span: u32,
}

/// Tournament tree over per-machine dispatch stats; see module docs.
#[derive(Debug)]
pub struct MachineIndex {
    m: usize,
    /// Leaf capacity: smallest power of two `≥ m`.
    cap: usize,
    /// Implicit tree: root at 1, children of `k` at `2k`/`2k+1`,
    /// leaf `i` at `cap + i`.
    nodes: Vec<NodeStats>,
    /// Reusable frontier heap (no per-search allocation once warm).
    heap: BinaryHeap<Reverse<Frontier>>,
    mode: SearchMode,
}

impl MachineIndex {
    /// Index over `m` machines, all starting with empty queues, in the
    /// search mode best for `m` (flat at or below
    /// [`FLAT_MAX_MACHINES`], heap above).
    ///
    /// # Panics
    /// Panics when `m == 0` (instances always have a machine).
    pub fn new(m: usize) -> Self {
        let mode = if m <= FLAT_MAX_MACHINES {
            SearchMode::Flat
        } else {
            SearchMode::Heap
        };
        Self::with_mode(m, mode)
    }

    /// Index over `m` machines with an explicit [`SearchMode`] —
    /// for the ablation benches and the crossover-boundary tests;
    /// production callers want [`MachineIndex::new`].
    ///
    /// # Panics
    /// Panics when `m == 0` (instances always have a machine).
    pub fn with_mode(m: usize, mode: SearchMode) -> Self {
        assert!(m > 0, "MachineIndex needs at least one machine");
        let cap = m.next_power_of_two();
        let mut nodes = vec![NodeStats::IDENTITY; 2 * cap];
        for leaf in 0..m {
            nodes[cap + leaf] = NodeStats::leaf(MachineStats::EMPTY);
        }
        for k in (1..cap).rev() {
            nodes[k] = NodeStats::combine(nodes[2 * k], nodes[2 * k + 1]);
        }
        MachineIndex {
            m,
            cap,
            nodes,
            heap: BinaryHeap::new(),
            mode,
        }
    }

    /// The search mode in effect.
    pub fn mode(&self) -> SearchMode {
        self.mode
    }

    /// Number of machines indexed.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the index covers no machines (never true; see [`Self::new`]).
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Current leaf stats of machine `i` (aggregate view).
    pub fn stats(&self, i: usize) -> &NodeStats {
        &self.nodes[self.cap + i]
    }

    /// Replaces machine `i`'s stats and rebuilds the `O(log m)`
    /// ancestors. Call after every pending-queue mutation.
    pub fn update(&mut self, i: usize, stats: MachineStats) {
        debug_assert!(i < self.m);
        let mut k = self.cap + i;
        self.nodes[k] = NodeStats::leaf(stats);
        k /= 2;
        while k >= 1 {
            self.nodes[k] = NodeStats::combine(self.nodes[2 * k], self.nodes[2 * k + 1]);
            k /= 2;
        }
    }

    /// Pruned argmin with every machine considered eligible; see the
    /// module docs for the bound contract. Returns `(machine, exact
    /// value)` for the lowest-index machine minimizing `eval`, or
    /// `None` when `eval` returns `None` everywhere.
    pub fn search<NB, LB, EV>(
        &mut self,
        node_bound: NB,
        leaf_bound: LB,
        eval: EV,
    ) -> Option<(usize, f64)>
    where
        NB: Fn(&NodeStats) -> f64,
        LB: Fn(usize, &NodeStats) -> f64,
        EV: FnMut(usize) -> Option<f64>,
    {
        self.search_masked(MaskView::All, node_bound, leaf_bound, eval)
    }

    /// Mask-guided pruned argmin: like [`MachineIndex::search`], but
    /// any subtree whose machine range misses `mask` is skipped
    /// without being descended or bounded (see the module docs for the
    /// mask contract: a masked-out machine's `eval` must be `None`, so
    /// skipping cannot change the result). Dispatches on the
    /// [`SearchMode`] chosen at construction; both modes return the
    /// identical lowest-index argmin.
    pub fn search_masked<NB, LB, EV>(
        &mut self,
        mask: MaskView<'_>,
        node_bound: NB,
        leaf_bound: LB,
        mut eval: EV,
    ) -> Option<(usize, f64)>
    where
        NB: Fn(&NodeStats) -> f64,
        LB: Fn(usize, &NodeStats) -> f64,
        EV: FnMut(usize) -> Option<f64>,
    {
        // (value, index) under lexicographic order; `TotalF64` keeps
        // NaN-poisoned bounds from corrupting comparisons.
        let mut best: Option<(f64, usize)> = None;
        let beats = |cand: f64, idx: usize, best: &Option<(f64, usize)>| -> bool {
            match best {
                None => true,
                Some((bv, bi)) => match TotalF64(cand).cmp(&TotalF64(*bv)) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => idx < *bi,
                    std::cmp::Ordering::Greater => false,
                },
            }
        };

        if self.mode == SearchMode::Flat {
            // One pass, increasing index, strict-improvement updates:
            // the same visit order and tie-break as the linear scan,
            // minus the exact evaluations the bounds/mask rule out.
            for idx in 0..self.m {
                if !mask.test(idx) {
                    continue;
                }
                let lb = leaf_bound(idx, &self.nodes[self.cap + idx]);
                if !beats(lb, idx, &best) {
                    continue;
                }
                if let Some(val) = eval(idx) {
                    if beats(val, idx, &best) {
                        best = Some((val, idx));
                    }
                }
            }
            return best.map(|(v, i)| (i, v));
        }

        // Sparse fast path: when the job is eligible on at most
        // FLAT_MAX_MACHINES machines, walking the mask's set bits
        // directly (one `trailing_zeros` per candidate, increasing
        // index — the linear scan's visit order and tie-break) beats
        // any tree descent: no heap traffic, no internal nodes, cost
        // `O(words + eligible)` regardless of `m`. This is what makes
        // rack-affinity dispatch scale with the rack size.
        if let MaskView::Words { words, .. } = mask {
            // Only "is the count ≤ the threshold?" matters, so the
            // popcount scan exits as soon as it cannot be — dense
            // masks pay a couple of words here, not O(m/64).
            let mut eligible = 0usize;
            for &w in words {
                eligible += w.count_ones() as usize;
                if eligible > FLAT_MAX_MACHINES {
                    break;
                }
            }
            if eligible <= FLAT_MAX_MACHINES {
                for (k, &word) in words.iter().enumerate() {
                    let mut word = word;
                    while word != 0 {
                        let idx = k * 64 + word.trailing_zeros() as usize;
                        word &= word - 1;
                        if idx >= self.m {
                            break;
                        }
                        let lb = leaf_bound(idx, &self.nodes[self.cap + idx]);
                        if !beats(lb, idx, &best) {
                            continue;
                        }
                        if let Some(val) = eval(idx) {
                            if beats(val, idx, &best) {
                                best = Some((val, idx));
                            }
                        }
                    }
                }
                return best.map(|(v, i)| (i, v));
            }
        }

        self.heap.clear();
        if mask.any_in_range(0, self.cap) {
            self.heap.push(Reverse(Frontier {
                bound: TotalF64(node_bound(&self.nodes[1])),
                lo: 0,
                node: 1,
                span: self.cap as u32,
            }));
        }

        while let Some(Reverse(e)) = self.heap.pop() {
            if let Some((bv, bi)) = best {
                // The heap is min-ordered by (bound, lo): once the head
                // cannot beat or lower-index-tie the incumbent, nothing
                // behind it can either.
                let cmp = e.bound.cmp(&TotalF64(bv));
                if cmp == std::cmp::Ordering::Greater
                    || (cmp == std::cmp::Ordering::Equal && e.lo as usize >= bi)
                {
                    break;
                }
            }
            if e.node as usize >= self.cap {
                let idx = e.node as usize - self.cap;
                if idx >= self.m {
                    continue; // padding leaf
                }
                let lb = leaf_bound(idx, &self.nodes[e.node as usize]);
                if !beats(lb, idx, &best) {
                    continue;
                }
                if let Some(val) = eval(idx) {
                    if beats(val, idx, &best) {
                        best = Some((val, idx));
                    }
                }
            } else {
                let half = e.span / 2;
                for (child, lo) in [(2 * e.node, e.lo), (2 * e.node + 1, e.lo + half)] {
                    // Mask first: a range with no eligible machine is
                    // skipped without even computing its bound.
                    if !mask.any_in_range(lo as usize, half as usize) {
                        continue;
                    }
                    let b = node_bound(&self.nodes[child as usize]);
                    if beats(b, lo as usize, &best) {
                        self.heap.push(Reverse(Frontier {
                            bound: TotalF64(b),
                            lo,
                            node: child,
                            span: half,
                        }));
                    }
                }
            }
        }
        best.map(|(v, i)| (i, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(count: u64, wsum: f64, min: f64) -> MachineStats {
        MachineStats {
            count,
            wsum,
            min_size: min,
        }
    }

    /// Exhaustive reference: lowest-index argmin over eval.
    fn linear_argmin(values: &[Option<f64>]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, v) in values.iter().enumerate() {
            if let Some(v) = v {
                if best.is_none_or(|(_, bv)| *v < bv) {
                    best = Some((i, *v));
                }
            }
        }
        best
    }

    /// Searches with bounds equal to the exact values (tightest legal).
    fn search_exact(ix: &mut MachineIndex, values: &[Option<f64>]) -> Option<(usize, f64)> {
        // Node bound: no per-leaf info, so use the global min value —
        // a legal (if clairvoyant) lower bound.
        let global = values
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min);
        ix.search(
            |_| global,
            |i, _| values[i].unwrap_or(f64::INFINITY),
            |i| values[i],
        )
    }

    #[test]
    fn aggregates_maintained_bottom_up() {
        let mut ix = MachineIndex::new(5);
        ix.update(2, busy(3, 7.5, 1.25));
        ix.update(4, busy(1, 2.0, 2.0));
        assert_eq!(ix.stats(2).min_count, 3);
        assert_eq!(ix.nodes[1].min_count, 0); // machines 0,1,3 empty
        assert_eq!(ix.nodes[1].max_wsum, 7.5);
        assert_eq!(ix.nodes[1].min_size, 1.25);
        ix.update(2, MachineStats::EMPTY);
        assert_eq!(ix.nodes[1].max_wsum, 2.0);
        assert_eq!(ix.nodes[1].min_size, 2.0);
    }

    #[test]
    fn search_finds_lowest_index_argmin_on_ties() {
        for m in [1usize, 2, 3, 7, 8, 9, 30] {
            let mut ix = MachineIndex::new(m);
            // All machines tie at 5.0 → index 0 must win.
            let values: Vec<Option<f64>> = vec![Some(5.0); m];
            assert_eq!(search_exact(&mut ix, &values), Some((0, 5.0)));
            // A strict winner beats an earlier tie.
            if m >= 3 {
                let mut v = vec![Some(5.0); m];
                v[m - 1] = Some(4.0);
                assert_eq!(search_exact(&mut ix, &v), Some((m - 1, 4.0)));
            }
        }
    }

    #[test]
    fn search_skips_ineligible_and_handles_none() {
        let mut ix = MachineIndex::new(4);
        let values = vec![None, Some(9.0), None, Some(9.0)];
        assert_eq!(search_exact(&mut ix, &values), Some((1, 9.0)));
        let none: Vec<Option<f64>> = vec![None; 4];
        assert_eq!(search_exact(&mut ix, &none), None);
    }

    #[test]
    fn loose_bounds_never_change_the_answer() {
        // Deterministic pseudo-random cross-check: arbitrary stats,
        // arbitrary values, bounds that understate by varying slack.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            let m = 1 + (next() % 33) as usize;
            let values: Vec<Option<f64>> = (0..m)
                .map(|_| {
                    if next() % 5 == 0 {
                        None
                    } else {
                        Some((next() % 1000) as f64 / 10.0)
                    }
                })
                .collect();
            let slack = (next() % 50) as f64 / 10.0;
            let mut ix = MachineIndex::new(m);
            let expected = linear_argmin(&values);
            let got = ix.search(
                |_| 0.0,
                |i, _| values[i].map_or(f64::INFINITY, |v| (v - slack).max(0.0)),
                |i| values[i],
            );
            assert_eq!(got, expected, "trial {trial} m {m} slack {slack}");
        }
    }

    #[test]
    fn pruning_skips_exact_evaluations() {
        // One cheap machine among many expensive ones: with tight
        // bounds, the search must not evaluate every leaf.
        let m = 64;
        let mut ix = MachineIndex::new(m);
        for i in 0..m {
            ix.update(
                i,
                if i == 5 {
                    MachineStats::EMPTY
                } else {
                    busy(10, 100.0, 10.0)
                },
            );
        }
        let mut evals = 0usize;
        let got = ix.search(
            // Bound from stats: empty queues promise 1.0, busy ones 50.0.
            |s| if s.min_count == 0 { 1.0 } else { 50.0 },
            |_, s| if s.min_count == 0 { 1.0 } else { 50.0 },
            |i| {
                evals += 1;
                Some(if i == 5 { 1.0 } else { 50.0 })
            },
        );
        assert_eq!(got, Some((5, 1.0)));
        assert!(evals < m / 2, "pruning ineffective: {evals} evals");
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_panics() {
        let _ = MachineIndex::new(0);
    }

    #[test]
    fn mode_auto_selection_follows_the_crossover() {
        assert_eq!(MachineIndex::new(1).mode(), SearchMode::Flat);
        assert_eq!(
            MachineIndex::new(FLAT_MAX_MACHINES).mode(),
            SearchMode::Flat
        );
        assert_eq!(
            MachineIndex::new(FLAT_MAX_MACHINES + 1).mode(),
            SearchMode::Heap
        );
    }

    /// Deterministic xorshift for the randomized cross-checks below.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Satellite lock for the flat bound-scan variant: at the
    /// crossover boundary (m = 63, 64, 65) the flat pass, the heap
    /// search, and the exhaustive linear reference must return the
    /// identical `(value, index)` — including ties, `None`s, and
    /// deliberately slack bounds.
    #[test]
    fn flat_and_heap_agree_at_the_crossover_boundary() {
        for m in [
            FLAT_MAX_MACHINES - 1,
            FLAT_MAX_MACHINES,
            FLAT_MAX_MACHINES + 1,
        ] {
            let mut state = 0xC0FFEE ^ ((m as u64) << 17);
            for trial in 0..50 {
                // Tie-heavy value set (values from a small grid, ~1/6
                // ineligible) with random per-trial bound slack.
                let values: Vec<Option<f64>> = (0..m)
                    .map(|_| {
                        if xorshift(&mut state).is_multiple_of(6) {
                            None
                        } else {
                            Some((xorshift(&mut state) % 8) as f64)
                        }
                    })
                    .collect();
                let slack = (xorshift(&mut state) % 30) as f64 / 10.0;
                let expected = linear_argmin(&values);
                for mode in [SearchMode::Flat, SearchMode::Heap] {
                    let mut ix = MachineIndex::with_mode(m, mode);
                    let got = ix.search(
                        |_| 0.0,
                        |i, _| values[i].map_or(f64::INFINITY, |v| (v - slack).max(0.0)),
                        |i| values[i],
                    );
                    assert_eq!(got, expected, "m={m} trial={trial} mode={mode:?}");
                }
                // The auto-selected mode agrees too (whichever it is).
                let mut ix = MachineIndex::new(m);
                let got = ix.search(|_| 0.0, |_, _| 0.0, |i| values[i]);
                assert_eq!(got, expected, "m={m} trial={trial} auto");
            }
        }
    }

    /// Builds the two word layers of a stride mask: machine `i`
    /// eligible iff `i % groups == g`.
    fn stride_mask(m: usize, groups: usize, g: usize) -> (Vec<u64>, Vec<u64>) {
        let mut words = vec![0u64; m.div_ceil(64)];
        for i in (g..m).step_by(groups) {
            words[i / 64] |= 1 << (i % 64);
        }
        let mut summary = vec![0u64; words.len().div_ceil(64)];
        for (k, w) in words.iter().enumerate() {
            if *w != 0 {
                summary[k / 64] |= 1 << (k % 64);
            }
        }
        (words, summary)
    }

    #[test]
    fn mask_view_range_intersection_is_exact() {
        // Small strided mask: every aligned range answer must equal
        // the brute-force bit scan.
        let m = 200;
        let (words, summary) = stride_mask(m, 7, 3);
        let mask = MaskView::Words {
            words: &words,
            summary: &summary,
        };
        let cap = m.next_power_of_two();
        let mut span = cap;
        while span >= 1 {
            for lo in (0..cap).step_by(span) {
                let expect = (lo..lo + span).any(|i| i < m && i % 7 == 3);
                assert_eq!(mask.any_in_range(lo, span), expect, "lo={lo} span={span}");
            }
            span /= 2;
        }
        // Ranges entirely past the mask words are empty, not a panic.
        assert!(!mask.any_in_range(256, 256));
        assert!(MaskView::All.any_in_range(0, 1 << 20));
    }

    #[test]
    fn mask_view_summary_layer_handles_big_spans() {
        // m = 8192: spans above 4096 exercise the summary *scan* arm,
        // spans in (64, 4096] the single-summary-word arm.
        let m = 8192;
        // Only machines 6000..6064 eligible — a single hot word region.
        let mut words = vec![0u64; m / 64];
        for i in 6000..6064 {
            words[i / 64] |= 1 << (i % 64);
        }
        let mut summary = vec![0u64; words.len().div_ceil(64)];
        for (k, w) in words.iter().enumerate() {
            if *w != 0 {
                summary[k / 64] |= 1 << (k % 64);
            }
        }
        let mask = MaskView::Words {
            words: &words,
            summary: &summary,
        };
        assert!(mask.any_in_range(0, 8192));
        assert!(mask.any_in_range(4096, 4096));
        assert!(!mask.any_in_range(0, 4096));
        assert!(mask.any_in_range(4096, 2048));
        assert!(!mask.any_in_range(6144, 2048));
        assert!(mask.any_in_range(5888, 256));
        assert!(mask.test(6000) && !mask.test(5999));
    }

    /// The mask-guided descent must (a) return exactly the unmasked
    /// answer when masked-out machines evaluate to `None` anyway, and
    /// (b) never descend into — bound, or exactly evaluate — a
    /// mask-empty subtree.
    #[test]
    fn masked_search_skips_ineligible_subtrees_in_both_modes() {
        // Eligible counts straddle the sparse fast path's threshold:
        // 64/8 and 512/16 stay at or below FLAT_MAX_MACHINES (bit-walk
        // arm), 2048/16 = 128 eligible exceeds it (true mask-guided
        // heap descent).
        for (m, groups) in [(64usize, 8usize), (512, 16), (2_048, 16)] {
            for g in [0, groups - 1] {
                let (words, summary) = stride_mask(m, groups, g);
                let mut values: Vec<Option<f64>> = vec![None; m];
                let mut state = 0xABCDEF ^ (m * groups + g) as u64;
                for i in (g..m).step_by(groups) {
                    values[i] = Some((xorshift(&mut state) % 100) as f64 / 7.0);
                }
                let expected = linear_argmin(&values);
                for mode in [SearchMode::Flat, SearchMode::Heap] {
                    let mut ix = MachineIndex::with_mode(m, mode);
                    for i in 0..m {
                        ix.update(i, busy(1 + (i % 3) as u64, 4.0, 1.0));
                    }
                    let mut evals = 0usize;
                    let got = ix.search_masked(
                        MaskView::Words {
                            words: &words,
                            summary: &summary,
                        },
                        |_| 0.0,
                        |_, _| 0.0,
                        |i| {
                            evals += 1;
                            assert_eq!(i % groups, g, "evaluated a masked-out machine");
                            values[i]
                        },
                    );
                    assert_eq!(got, expected, "m={m} g={g} mode={mode:?}");
                    assert!(
                        evals <= m / groups,
                        "m={m} g={g} mode={mode:?}: {evals} evals > eligible count"
                    );
                }
            }
        }
    }

    /// A mask with no bits set short-circuits to `None` without work.
    #[test]
    fn empty_mask_returns_none() {
        let (words, summary) = (vec![0u64; 4], vec![0u64; 1]);
        for mode in [SearchMode::Flat, SearchMode::Heap] {
            let mut ix = MachineIndex::with_mode(200, mode);
            let got = ix.search_masked(
                MaskView::Words {
                    words: &words,
                    summary: &summary,
                },
                |_| 0.0,
                |_, _| 0.0,
                |_| -> Option<f64> { panic!("nothing to evaluate") },
            );
            assert_eq!(got, None);
        }
    }
}
