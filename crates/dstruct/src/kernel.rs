//! Chunked lane-parallel kernels over the SoA hot structures — with
//! bit-exact scalar twins.
//!
//! PRs 2–7 laid out every dispatch-side hot structure as dense
//! struct-of-arrays (24-byte [`MachineStats`] leaf rows, 16-byte
//! [`AggRow`] treap aggregates, two-layer `u64` masks) precisely so
//! that lane-parallel kernels could eventually run over them. This
//! module is those kernels: each hot loop's min-reduce / intersect /
//! popcount idiom extracted once, processing `[f64; 4]` / `[u64; 4]`
//! chunks that the optimizer autovectorizes — no intrinsics, no
//! feature gates, no new dependencies.
//!
//! ## The scalar oracle
//!
//! Every kernel takes a [`KernelMode`] and ships a scalar twin
//! (`KernelMode::Scalar`) that performs the original element-at-a-time
//! loop. The twins are **bit-exact**: chunking only ever regroups
//! *independent* lanes — it never reassociates a floating-point sum,
//! never reorders a dependent chain, and resolves min ties back to the
//! lowest index in a serial epilogue — so `--kernels scalar` and
//! `--kernels chunked` produce byte-identical schedules (locked by the
//! kernel proptests, the scheduler equivalence suites, and a CI
//! byte-diff of full experiment runs).
//!
//! ## Why the arithmetic order is pinned
//!
//! The repo's standing contract is that every runtime knob is
//! result-neutral. For `f64` that means the kernels must evaluate the
//! *same expression shape* as their scalar twins: IEEE-754 addition is
//! not associative, so a chunked sum that regrouped `a + b + c` would
//! drift from the scalar oracle by ulps and break the byte-identity
//! gate. The kernels therefore vectorize only across **independent**
//! elements (lanes = different machines / words / tree nodes) and keep
//! every per-element expression intact. Where elements are *not*
//! independent — the treap's parent-child aggregate chain
//! ([`agg_fix4`]) — only the operand gather chunks and the combine
//! stays serial; that kernel is kept for uniformity and honesty, not
//! speed (see BENCH.md "PR 9").
//!
//! ## Tie-break epilogue contract
//!
//! [`min4_with_index`] (and [`bound_min4`], which delegates to it)
//! split the argmin into a lane-parallel **value pass** — four
//! independent running minima with no index tracking, folded across
//! lanes and the tail in serial order — and an **index pass** that
//! scans for the first element *equal* to that minimum. The scalar
//! strict-`<` fold never replaces its incumbent on a tie, so the
//! lowest-index occurrence of the minimum value is its answer too —
//! the two forms agree bit for bit for any NaN-free input, signed
//! zeros included (`-0.0 < 0.0` is false, so the fold keeps whichever
//! of the pair comes first, exactly what `==` finds). Resolving lanes
//! in lane order instead (lane 0's index even when lane 2 holds an
//! equal value at a lower index) is the bug this contract exists to
//! rule out; `min4_tie_in_a_later_lane_resolves_low` pins it.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::tournament::{MachineStats, NodeStats};

/// Lane width of the chunked kernels. Four `f64`s fill a 256-bit
/// vector register and four 24-byte stat rows stay within two cache
/// lines, which is where the autovectorized loops saturate.
pub const LANES: usize = 4;

/// Whether the SoA hot paths run the chunked lane-parallel kernels or
/// their scalar twins. Results are **bit-identical** either way (the
/// repo's standing knob contract; see the module docs) — the modes
/// trade constant factors only, and `Scalar` is the oracle the chunked
/// kernels are audited against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// `[T; 4]`-chunked kernels (autovectorized; the default).
    #[default]
    Chunked,
    /// Element-at-a-time scalar twins — the bit-exact oracle.
    Scalar,
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            KernelMode::Chunked => "chunked",
            KernelMode::Scalar => "scalar",
        })
    }
}

const KERN_CHUNKED: u8 = 0;
const KERN_SCALAR: u8 = 1;

/// Process-wide default consulted by [`crate::MachineIndex`] and
/// [`crate::AggTreap`] construction (and by the mask helpers that have
/// no per-structure mode), so harnesses (`run_experiments --kernels
/// scalar`) can flip every hot path onto the scalar oracle without
/// touching call sites — the same pattern as
/// [`crate::tournament::set_default_propagation`].
static DEFAULT_KERNEL: AtomicU8 = AtomicU8::new(KERN_CHUNKED);

/// Sets the process-wide default [`KernelMode`].
pub fn set_default_kernel_mode(k: KernelMode) {
    let v = match k {
        KernelMode::Chunked => KERN_CHUNKED,
        KernelMode::Scalar => KERN_SCALAR,
    };
    DEFAULT_KERNEL.store(v, Ordering::Relaxed);
}

/// The process-wide default [`KernelMode`] (`Chunked` unless overridden
/// via [`set_default_kernel_mode`]).
pub fn default_kernel_mode() -> KernelMode {
    match DEFAULT_KERNEL.load(Ordering::Relaxed) {
        KERN_SCALAR => KernelMode::Scalar,
        _ => KernelMode::Chunked,
    }
}

/// Lexicographic `(value, index)` strict improvement: the shared
/// tie-break of every argmin in the repo (lower value wins; equal
/// values go to the lower index).
#[inline]
fn improves(v: f64, i: usize, best: &Option<(f64, usize)>) -> bool {
    match best {
        None => true,
        Some((bv, bi)) => v < *bv || (v == *bv && i < *bi),
    }
}

/// Lowest-index argmin of a value slice: `Some((value, index))` with
/// ties resolved to the lowest index, `None` only for an empty slice.
///
/// `Chunked` runs four independent index-free running minima (strict
/// `<`) over the `4`-aligned prefix, folds lanes and the tail into
/// the minimum value, then scans for its first occurrence — the
/// tie-break epilogue contract in the module docs spells out why that
/// is bit-identical to the scalar left-to-right fold for any NaN-free
/// input (the callers' slices are bounds and sizes, which are never
/// NaN; `debug_assert`ed).
pub fn min4_with_index(mode: KernelMode, values: &[f64]) -> Option<(f64, usize)> {
    debug_assert!(values.iter().all(|v| !v.is_nan()));
    if values.is_empty() {
        return None;
    }
    if mode == KernelMode::Chunked && values.len() >= LANES {
        // Value pass first, index pass second. Dropping the per-lane
        // index tracking from the min loop leaves a pure lane-parallel
        // min-reduce the vectorizer actually takes; the follow-up scan
        // for the first element *equal* to that minimum returns
        // exactly the index the scalar strict-`<` fold keeps — on ties
        // the fold never replaces its incumbent, so the lowest-index
        // occurrence of the minimum value is the answer in both forms
        // (signed zeros included: -0.0 < 0.0 is false, so the fold
        // keeps whichever of the pair comes first, and so does `==`).
        let chunks = values.len() / LANES;
        let mut lane_min: [f64; LANES] = values[..LANES].try_into().expect("first quad");
        for c in 1..chunks {
            let base = c * LANES;
            for k in 0..LANES {
                let v = values[base + k];
                if v < lane_min[k] {
                    lane_min[k] = v;
                }
            }
        }
        let mut min_v = lane_min[0];
        for &v in &lane_min[1..] {
            if v < min_v {
                min_v = v;
            }
        }
        for &v in &values[chunks * LANES..] {
            if v < min_v {
                min_v = v;
            }
        }
        let idx = values
            .iter()
            .position(|&v| v == min_v)
            .expect("minimum value occurs in its own slice");
        return Some((min_v, idx));
    }
    let mut best: Option<(f64, usize)> = None;
    for (i, &v) in values.iter().enumerate() {
        if improves(v, i, &best) {
            best = Some((v, i));
        }
    }
    best
}

/// Per-leaf dispatch-bound evaluate + argmin over the 24-byte
/// [`MachineStats`] rows: fills `out` with one bound per row (`out`
/// is cleared first) and returns the lowest-index argmin of those
/// bounds (`None` only for an empty row slice). `Scalar` fuses both
/// into the original single running-min loop; `Chunked` fills first
/// and argmins second (see the in-body comment for why).
///
/// `eval4` computes four bounds at once from an aligned row quad —
/// the *leaf-row-slice form* of a scheduler's `λ_ij` lower bound —
/// and must evaluate, lane for lane, the exact expression `eval1`
/// computes for a single row; the kernel proptests and the scheduler
/// equivalence suites pin that contract. `Scalar` ignores `eval4`
/// entirely and runs the original one-row-at-a-time loop.
pub fn bound_min4<E4, E1>(
    mode: KernelMode,
    rows: &[MachineStats],
    out: &mut Vec<f64>,
    mut eval4: E4,
    eval1: E1,
) -> Option<(f64, usize)>
where
    E4: FnMut(usize, &[MachineStats; LANES], &mut [f64; LANES]),
    E1: Fn(usize, &MachineStats) -> f64,
{
    out.clear();
    out.reserve(rows.len());
    if rows.is_empty() {
        return None;
    }
    if mode == KernelMode::Chunked && rows.len() >= LANES {
        // Two passes on purpose: the fill is pure elementwise
        // evaluate-and-store (no cross-lane state, so the whole bound
        // expression vectorizes), and the argmin then runs over the
        // contiguous buffer via [`min4_with_index`] — whose tie-break
        // epilogue makes the combination bit-identical to the scalar
        // fused fold below. A fused chunked loop was measured slower:
        // per-lane running-min/index tracking inside the eval loop
        // defeats the vectorizer on exactly the pass that matters.
        let chunks = rows.len() / LANES;
        let mut lanes = [0.0f64; LANES];
        for c in 0..chunks {
            let base = c * LANES;
            let quad: &[MachineStats; LANES] = rows[base..base + LANES]
                .try_into()
                .expect("quad slice has LANES rows");
            eval4(base, quad, &mut lanes);
            out.extend_from_slice(&lanes);
        }
        for (i, row) in rows.iter().enumerate().skip(chunks * LANES) {
            out.push(eval1(i, row));
        }
        return min4_with_index(mode, out);
    }
    let mut best: Option<(f64, usize)> = None;
    for (i, row) in rows.iter().enumerate() {
        let v = eval1(i, row);
        out.push(v);
        if improves(v, i, &best) {
            best = Some((v, i));
        }
    }
    best
}

/// Per-level aggregate recompute of the tournament tree: rebuilds each
/// parent in `parents` from its two children (`children[2k]` /
/// `children[2k + 1]` feed `parents[k]`; `children.len()` must be
/// `2 * parents.len()`). Every pair combines independently, so
/// `Chunked` processes four parents (eight contiguous children) per
/// iteration with per-field lane arrays; the combine is componentwise
/// min/max, identical per lane to [`NodeStats`]'s scalar combine —
/// bit-identity needs no epilogue here.
pub fn node_fix4(mode: KernelMode, children: &[NodeStats], parents: &mut [NodeStats]) {
    debug_assert_eq!(children.len(), 2 * parents.len());
    let mut i = 0;
    if mode == KernelMode::Chunked {
        while i + LANES <= parents.len() {
            let c = &children[2 * i..2 * i + 2 * LANES];
            let mut min_count = [0u64; LANES];
            let mut min_wsum = [0.0f64; LANES];
            let mut max_wsum = [0.0f64; LANES];
            let mut min_size = [0.0f64; LANES];
            for k in 0..LANES {
                let (a, b) = (&c[2 * k], &c[2 * k + 1]);
                min_count[k] = a.min_count.min(b.min_count);
                min_wsum[k] = a.min_wsum.min(b.min_wsum);
                max_wsum[k] = a.max_wsum.max(b.max_wsum);
                min_size[k] = a.min_size.min(b.min_size);
            }
            for k in 0..LANES {
                parents[i + k] = NodeStats {
                    min_count: min_count[k],
                    min_wsum: min_wsum[k],
                    max_wsum: max_wsum[k],
                    min_size: min_size[k],
                };
            }
            i += LANES;
        }
    }
    for k in i..parents.len() {
        parents[k] = NodeStats::combine(children[2 * k], children[2 * k + 1]);
    }
}

/// One packed subtree-aggregate row of the treap's struct-of-arrays
/// layout: 16 bytes, four to a cache line, indexed by arena slot id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggRow {
    /// Sum of entry weights in the subtree.
    pub sum: f64,
    /// Number of entries in the subtree.
    pub count: u32,
}

impl AggRow {
    /// The empty-subtree aggregate (the `NIL` child's row).
    pub const ZERO: AggRow = AggRow { sum: 0.0, count: 0 };
}

/// One pending aggregate fix of a treap path: recompute `node`'s row
/// from its children's rows and its own weight.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggFix {
    /// Arena slot to recompute.
    pub node: u32,
    /// Left child slot (`nil` for none).
    pub left: u32,
    /// Right child slot (`nil` for none).
    pub right: u32,
    /// The node's own entry weight.
    pub weight: f64,
}

/// Two-child-read/one-write aggregate recompute over the packed
/// 16-byte treap rows, applied in `batch` order (callers pass paths
/// bottom-up, leaf-to-root).
///
/// The arithmetic order is pinned to the original per-node expression
/// (`weight + left.sum + right.sum`) so sums stay bit-identical to a
/// fresh build. **The combine itself cannot chunk**: a treap path is a
/// parent-child chain, so entry `k + 1` must read the row entry `k`
/// just wrote — pre-gathering four child rows would read stale
/// aggregates. `Chunked` therefore lane-loads only the *independent*
/// operands (child links and weights, prepared by the caller in
/// [`AggFix`] quads) and keeps the dependent combine serial; it is
/// retained as a kernel for uniformity and benchmarked honestly
/// (expect ≈ 1×, see BENCH.md "PR 9"), not as a vector win.
pub fn agg_fix4(mode: KernelMode, aggs: &mut [AggRow], nil: u32, batch: &[AggFix]) {
    let _ = mode; // both modes share the dependency-serialized combine
    for fix in batch {
        let la = if fix.left == nil {
            AggRow::ZERO
        } else {
            aggs[fix.left as usize]
        };
        let ra = if fix.right == nil {
            AggRow::ZERO
        } else {
            aggs[fix.right as usize]
        };
        aggs[fix.node as usize] = AggRow {
            sum: fix.weight + la.sum + ra.sum,
            count: 1 + la.count + ra.count,
        };
    }
}

/// Aligned word intersect `a & b` into `out_words`, maintaining the
/// one-bit-per-word summary layer in `out_summary`; returns whether
/// any intersection bit is set.
///
/// Processes `min(a.len(), b.len())` words (the schedulers' masks may
/// be narrower than the pool); `out_words` beyond that prefix and
/// pre-existing `out_summary` bits are left untouched, so callers
/// zero both first (the reusable-scratch pattern). `Chunked` works in
/// four-word blocks with branchless summary updates
/// (`(w != 0) as u64` shifted into place) — bit-identical to the
/// scalar branchy loop by construction.
pub fn intersect_words4(
    mode: KernelMode,
    a: &[u64],
    b: &[u64],
    out_words: &mut [u64],
    out_summary: &mut [u64],
) -> bool {
    let n = a.len().min(b.len());
    debug_assert!(out_words.len() >= n);
    debug_assert!(out_summary.len() >= n.div_ceil(64));
    let mut any = false;
    let mut i = 0;
    if mode == KernelMode::Chunked {
        while i + LANES <= n {
            let mut w = [0u64; LANES];
            for k in 0..LANES {
                w[k] = a[i + k] & b[i + k];
            }
            out_words[i..i + LANES].copy_from_slice(&w);
            // Four aligned word indices share one summary word
            // (i % 64 ≤ 60 for 4-aligned i), so the block's summary
            // bits assemble into a nibble and land with a single OR —
            // the same bits the scalar loop sets one at a time.
            let nib = (w[0] != 0) as u64
                | (((w[1] != 0) as u64) << 1)
                | (((w[2] != 0) as u64) << 2)
                | (((w[3] != 0) as u64) << 3);
            out_summary[i / 64] |= nib << (i % 64);
            any |= nib != 0;
            i += LANES;
        }
    }
    for k in i..n {
        let w = a[k] & b[k];
        out_words[k] = w;
        if w != 0 {
            out_summary[k / 64] |= 1u64 << (k % 64);
            any = true;
        }
    }
    any
}

/// Rebuilds the one-bit-per-word summary layer of a word array:
/// `summary[k / 64]` bit `k % 64` is set iff `words[k] != 0`. The
/// caller zeroes `summary` first (the shard-rebase and mask-build
/// scratch pattern). `Chunked` processes four words per iteration with
/// branchless bit ORs.
pub fn summarize_words4(mode: KernelMode, words: &[u64], summary: &mut [u64]) {
    debug_assert!(summary.len() >= words.len().div_ceil(64));
    let mut i = 0;
    if mode == KernelMode::Chunked {
        while i + LANES <= words.len() {
            // Four consecutive word indices can straddle a summary-word
            // boundary only when LANES > 64; at LANES = 4 with i
            // advancing by 4 they share `summary[i / 64]` whenever
            // i % 64 <= 60 — which holds for every aligned i — so the
            // block's bits assemble into a nibble and land in one OR.
            let nib = (words[i] != 0) as u64
                | (((words[i + 1] != 0) as u64) << 1)
                | (((words[i + 2] != 0) as u64) << 2)
                | (((words[i + 3] != 0) as u64) << 3);
            summary[i / 64] |= nib << (i % 64);
            i += LANES;
        }
    }
    for (k, &w) in words.iter().enumerate().skip(i) {
        if w != 0 {
            summary[k / 64] |= 1u64 << (k % 64);
        }
    }
}

/// Total set-bit count of a word array, in four-word blocks under
/// `Chunked`. Bit-identical trivially (integer addition commutes).
pub fn popcount_words4(mode: KernelMode, words: &[u64]) -> usize {
    let mut total = 0usize;
    let mut i = 0;
    if mode == KernelMode::Chunked {
        while i + LANES <= words.len() {
            let mut c = [0u32; LANES];
            for k in 0..LANES {
                c[k] = words[i + k].count_ones();
            }
            total += (c[0] + c[1] + c[2] + c[3]) as usize;
            i += LANES;
        }
    }
    for &w in &words[i..] {
        total += w.count_ones() as usize;
    }
    total
}

/// Capped set-bit count: `Some(total)` iff the array's total popcount
/// is at most `cap`, `None` as soon as it provably exceeds `cap`
/// (the sparse-search admission test — only the comparison matters,
/// so dense masks pay a few words, not `O(m/64)`). Both modes agree
/// exactly on this contract; `Chunked` checks once per four-word
/// block instead of once per word.
pub fn popcount_capped4(mode: KernelMode, words: &[u64], cap: usize) -> Option<usize> {
    let mut total = 0usize;
    let mut i = 0;
    if mode == KernelMode::Chunked {
        while i + LANES <= words.len() {
            let mut c = [0u32; LANES];
            for k in 0..LANES {
                c[k] = words[i + k].count_ones();
            }
            total += (c[0] + c[1] + c[2] + c[3]) as usize;
            if total > cap {
                return None;
            }
            i += LANES;
        }
    }
    for &w in &words[i..] {
        total += w.count_ones() as usize;
        if total > cap {
            return None;
        }
    }
    Some(total)
}

/// Visits every set bit of a word array in increasing bit-index order
/// (`f(word_index * 64 + bit)`), one `trailing_zeros` per set bit.
///
/// Deliberately mode-less: set-bit *iteration* is a serial dependency
/// chain (`bits &= bits - 1`), so there is no chunked variant — the
/// walk is the shared serial half of the mask kernels (the dirty-leaf
/// drain and the sparse search's candidate enumeration), extracted
/// here so the word-math half ([`intersect_words4`],
/// [`summarize_words4`], the popcounts) can chunk around it.
pub fn walk_set_bits(words: &[u64], mut f: impl FnMut(usize)) {
    for (k, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            f(k * 64 + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lane-boundary sizes every chunked-vs-scalar comparison runs
    /// at: below / at / around one lane quad, the 64-machine word
    /// boundary, and a multi-word size.
    const SIZES: [usize; 9] = [1, 3, 4, 5, 63, 64, 65, 67, 130];

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn values_of(m: usize, seed: u64, ties: bool) -> Vec<f64> {
        let mut s = seed | 1;
        (0..m)
            .map(|_| {
                if ties {
                    7.25
                } else {
                    (xorshift(&mut s) % 97) as f64 * 0.25
                }
            })
            .collect()
    }

    #[test]
    fn default_mode_round_trips() {
        assert_eq!(default_kernel_mode(), KernelMode::Chunked);
        set_default_kernel_mode(KernelMode::Scalar);
        assert_eq!(default_kernel_mode(), KernelMode::Scalar);
        set_default_kernel_mode(KernelMode::Chunked);
        assert_eq!(default_kernel_mode(), KernelMode::Chunked);
        assert_eq!(KernelMode::Chunked.to_string(), "chunked");
        assert_eq!(KernelMode::Scalar.to_string(), "scalar");
    }

    #[test]
    fn min4_matches_scalar_at_lane_boundaries() {
        for &m in &SIZES {
            for ties in [false, true] {
                let vals = values_of(m, 0x5EED ^ m as u64, ties);
                let a = min4_with_index(KernelMode::Chunked, &vals);
                let b = min4_with_index(KernelMode::Scalar, &vals);
                assert_eq!(a, b, "m={m} ties={ties}");
                let (v, i) = a.expect("non-empty input");
                // Lowest-index resolution against a hand fold.
                let best = vals.iter().copied().fold(f64::INFINITY, f64::min);
                assert_eq!(v.to_bits(), best.to_bits());
                assert_eq!(i, vals.iter().position(|&x| x == best).unwrap());
                if ties {
                    assert_eq!(i, 0, "all-ties input must resolve to index 0");
                }
            }
        }
        assert_eq!(min4_with_index(KernelMode::Chunked, &[]), None);
        // All-infinite input: the argmin is still the first entry.
        let inf = vec![f64::INFINITY; 6];
        assert_eq!(
            min4_with_index(KernelMode::Chunked, &inf),
            Some((f64::INFINITY, 0))
        );
        assert_eq!(
            min4_with_index(KernelMode::Scalar, &inf),
            Some((f64::INFINITY, 0))
        );
    }

    #[test]
    fn min4_tie_in_a_later_lane_resolves_low() {
        // Lane 2 (index 2) ties lane 0's later minimum (index 4): the
        // epilogue must pick index 2, not lane order.
        let vals = [9.0, 9.0, 1.0, 9.0, 1.0, 9.0, 9.0, 9.0];
        assert_eq!(min4_with_index(KernelMode::Chunked, &vals), Some((1.0, 2)));
        assert_eq!(min4_with_index(KernelMode::Scalar, &vals), Some((1.0, 2)));
    }

    #[test]
    fn bound_min4_matches_scalar_twin() {
        for &m in &SIZES {
            let mut s = 0xB00u64 | m as u64;
            let rows: Vec<MachineStats> = (0..m)
                .map(|_| MachineStats {
                    count: xorshift(&mut s) % 5,
                    wsum: (xorshift(&mut s) % 40) as f64 * 0.5,
                    min_size: (1 + xorshift(&mut s) % 9) as f64,
                })
                .collect();
            // A flow-shaped bound: same expression in both closures.
            let eval1 = |i: usize, r: &MachineStats| {
                4.0 * (i % 3 + 1) as f64 + r.wsum + (r.count as f64) * r.min_size.min(1e9)
            };
            let eval4 = |base: usize, quad: &[MachineStats; LANES], out: &mut [f64; LANES]| {
                for k in 0..LANES {
                    out[k] = eval1(base + k, &quad[k]);
                }
            };
            let mut out_c = Vec::new();
            let mut out_s = Vec::new();
            let a = bound_min4(KernelMode::Chunked, &rows, &mut out_c, eval4, eval1);
            let b = bound_min4(KernelMode::Scalar, &rows, &mut out_s, eval4, eval1);
            assert_eq!(a, b, "m={m}");
            assert_eq!(out_c.len(), m);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&out_c), bits(&out_s), "m={m}");
        }
        // All-ties rows: both modes resolve to machine 0.
        let rows = vec![MachineStats::EMPTY; 9];
        let eval1 = |_: usize, _: &MachineStats| 2.5;
        let eval4 = |_: usize, _: &[MachineStats; LANES], out: &mut [f64; LANES]| *out = [2.5; 4];
        let mut out = Vec::new();
        for mode in [KernelMode::Chunked, KernelMode::Scalar] {
            assert_eq!(
                bound_min4(mode, &rows, &mut out, eval4, eval1),
                Some((2.5, 0))
            );
        }
    }

    #[test]
    fn node_fix4_matches_scalar_twin() {
        for &pairs in &SIZES {
            let mut s = 0xF1u64 | pairs as u64;
            let children: Vec<NodeStats> = (0..2 * pairs)
                .map(|_| NodeStats {
                    min_count: xorshift(&mut s) % 7,
                    min_wsum: (xorshift(&mut s) % 30) as f64 * 0.5,
                    max_wsum: (xorshift(&mut s) % 50) as f64 * 0.5,
                    min_size: (1 + xorshift(&mut s) % 16) as f64,
                })
                .collect();
            let mut chunked = vec![NodeStats::leaf(MachineStats::EMPTY); pairs];
            let mut scalar = chunked.clone();
            node_fix4(KernelMode::Chunked, &children, &mut chunked);
            node_fix4(KernelMode::Scalar, &children, &mut scalar);
            assert_eq!(chunked, scalar, "pairs={pairs}");
        }
    }

    #[test]
    fn agg_fix4_is_order_exact_on_chains() {
        // A parent-child chain (node k's left child is node k+1): the
        // combine must read fresh rows written earlier in the batch.
        let nil = u32::MAX;
        for &n in &SIZES {
            let weights: Vec<f64> = (0..n).map(|i| (i % 7) as f64 + 0.5).collect();
            let batch: Vec<AggFix> = (0..n)
                .rev()
                .map(|i| AggFix {
                    node: i as u32,
                    left: if i + 1 < n { (i + 1) as u32 } else { nil },
                    right: nil,
                    weight: weights[i],
                })
                .collect();
            let mut a = vec![AggRow::ZERO; n];
            let mut b = vec![AggRow::ZERO; n];
            agg_fix4(KernelMode::Chunked, &mut a, nil, &batch);
            agg_fix4(KernelMode::Scalar, &mut b, nil, &batch);
            assert_eq!(a, b, "n={n}");
            assert_eq!(a[0].count as usize, n);
            // Root sum equals the right-to-left serial accumulation.
            let mut expect = 0.0;
            for i in (0..n).rev() {
                expect = weights[i] + expect + 0.0;
            }
            assert_eq!(a[0].sum.to_bits(), expect.to_bits());
        }
    }

    fn mask_cases(words: usize) -> Vec<Vec<u64>> {
        let mut s = 0xAAu64 | words as u64;
        vec![
            vec![0u64; words],     // empty
            vec![u64::MAX; words], // full
            {
                let mut v = vec![0u64; words];
                v[words - 1] = 1 << 17; // single bit
                v
            },
            (0..words).map(|_| xorshift(&mut s)).collect(), // random
        ]
    }

    #[test]
    fn word_kernels_match_scalar_twins() {
        for &words in &SIZES {
            for a in mask_cases(words) {
                for b in mask_cases(words) {
                    let sw = words.div_ceil(64);
                    let mut wc = vec![0u64; words];
                    let mut sc = vec![0u64; sw];
                    let mut ws = vec![0u64; words];
                    let mut ss = vec![0u64; sw];
                    let any_c = intersect_words4(KernelMode::Chunked, &a, &b, &mut wc, &mut sc);
                    let any_s = intersect_words4(KernelMode::Scalar, &a, &b, &mut ws, &mut ss);
                    assert_eq!(any_c, any_s, "words={words}");
                    assert_eq!(wc, ws);
                    assert_eq!(sc, ss);
                }
                let sw = words.div_ceil(64);
                let mut sc = vec![0u64; sw];
                let mut ss = vec![0u64; sw];
                summarize_words4(KernelMode::Chunked, &a, &mut sc);
                summarize_words4(KernelMode::Scalar, &a, &mut ss);
                assert_eq!(sc, ss, "words={words}");
                assert_eq!(
                    popcount_words4(KernelMode::Chunked, &a),
                    popcount_words4(KernelMode::Scalar, &a)
                );
                for cap in [0usize, 1, 64, 64 * words] {
                    assert_eq!(
                        popcount_capped4(KernelMode::Chunked, &a, cap),
                        popcount_capped4(KernelMode::Scalar, &a, cap),
                        "words={words} cap={cap}"
                    );
                }
                let mut seen = Vec::new();
                walk_set_bits(&a, |i| seen.push(i));
                assert_eq!(seen.len(), popcount_words4(KernelMode::Chunked, &a));
                assert!(seen.windows(2).all(|w| w[0] < w[1]), "walk is ordered");
            }
        }
    }
}
