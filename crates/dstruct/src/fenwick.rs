//! Binary indexed (Fenwick) tree over `f64` values.
//!
//! Used by the §4 energy-minimization search to maintain per-time-slot
//! aggregates, and generally useful wherever prefix sums over a *fixed*
//! index space are needed. For dynamic key spaces (the online pending
//! queues) use [`crate::treap::AggTreap`].

/// A Fenwick tree supporting point update and prefix-sum query in
/// `O(log n)` over a fixed-size array of `f64`.
#[derive(Debug, Clone)]
pub struct Fenwick {
    // tree[0] unused; classic 1-based layout.
    tree: Vec<f64>,
}

impl Fenwick {
    /// Creates a tree over indices `0..len`, all zeros.
    pub fn new(len: usize) -> Self {
        Fenwick {
            tree: vec![0.0; len + 1],
        }
    }

    /// Builds from an initial slice in `O(n)`.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut tree = vec![0.0; values.len() + 1];
        for (i, &v) in values.iter().enumerate() {
            let i = i + 1;
            tree[i] += v;
            let parent = i + (i & i.wrapping_neg());
            if parent < tree.len() {
                let add = tree[i];
                tree[parent] += add;
            }
        }
        Fenwick { tree }
    }

    /// Number of indexable slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree has zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` at `index`.
    pub fn add(&mut self, index: usize, delta: f64) {
        assert!(index < self.len(), "fenwick index {index} out of bounds");
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over `0..=index` (inclusive prefix).
    pub fn prefix(&self, index: usize) -> f64 {
        assert!(index < self.len(), "fenwick index {index} out of bounds");
        let mut i = index + 1;
        let mut s = 0.0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Sum over the half-open range `lo..hi`.
    pub fn range(&self, lo: usize, hi: usize) -> f64 {
        assert!(lo <= hi && hi <= self.len(), "bad fenwick range {lo}..{hi}");
        if lo == hi {
            return 0.0;
        }
        let upper = self.prefix(hi - 1);
        if lo == 0 {
            upper
        } else {
            upper - self.prefix(lo - 1)
        }
    }

    /// Total sum.
    pub fn total(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.prefix(self.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_updates_and_prefix_sums() {
        let mut f = Fenwick::new(8);
        f.add(0, 1.0);
        f.add(3, 2.5);
        f.add(7, 4.0);
        assert_eq!(f.prefix(0), 1.0);
        assert_eq!(f.prefix(2), 1.0);
        assert_eq!(f.prefix(3), 3.5);
        assert_eq!(f.prefix(7), 7.5);
        assert_eq!(f.total(), 7.5);
    }

    #[test]
    fn range_queries() {
        let f = Fenwick::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.range(0, 4), 10.0);
        assert_eq!(f.range(1, 3), 5.0);
        assert_eq!(f.range(2, 2), 0.0);
        assert_eq!(f.range(3, 4), 4.0);
    }

    #[test]
    fn from_slice_matches_incremental() {
        let vals = [0.5, -1.0, 2.0, 0.0, 3.25, 7.5, -0.25];
        let built = Fenwick::from_slice(&vals);
        let mut inc = Fenwick::new(vals.len());
        for (i, &v) in vals.iter().enumerate() {
            inc.add(i, v);
        }
        for i in 0..vals.len() {
            assert!((built.prefix(i) - inc.prefix(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn negative_deltas_supported() {
        let mut f = Fenwick::new(4);
        f.add(1, 5.0);
        f.add(1, -2.0);
        assert_eq!(f.prefix(1), 3.0);
        assert_eq!(f.range(1, 2), 3.0);
    }

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert!(f.is_empty());
        assert_eq!(f.total(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_add_panics() {
        let mut f = Fenwick::new(2);
        f.add(2, 1.0);
    }

    #[test]
    fn matches_naive_prefix_sums_randomized() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let n = 64;
        let mut naive = vec![0.0f64; n];
        let mut f = Fenwick::new(n);
        for _ in 0..500 {
            let idx = (next() * n as f64) as usize % n;
            let delta = next() * 10.0 - 5.0;
            naive[idx] += delta;
            f.add(idx, delta);
        }
        let mut acc = 0.0;
        for i in 0..n {
            acc += naive[i];
            assert!((f.prefix(i) - acc).abs() < 1e-9, "mismatch at {i}");
        }
    }
}
