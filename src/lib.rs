//! # online-sched-rejection
//!
//! A complete, tested Rust reproduction of *"Online Non-preemptive
//! Scheduling on Unrelated Machines with Rejections"* (Lucarelli,
//! Moseley, Thang, Srivastav, Trystram — SPAA 2018, arXiv:1802.10309).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`model`] | `osr-model` | jobs, instances, schedule logs, metrics, I/O |
//! | [`dstruct`] | `osr-dstruct` | augmented treap, Fenwick tree, pairing heap |
//! | [`sim`] | `osr-sim` | event queue, scheduler trait, validator, Gantt, stats |
//! | [`core`] | `osr-core` | the paper's three algorithms + dual accounting |
//! | [`workload`] | `osr-workload` | generators and the Lemma 1/2 adversaries |
//! | [`baselines`] | `osr-baselines` | greedy/immediate/speed-aug comparators, exact OPT, lower bounds |
//!
//! ## Quickstart
//!
//! ```
//! use online_sched_rejection::prelude::*;
//!
//! // Three jobs race onto two unrelated machines.
//! let instance = InstanceBuilder::new(2, InstanceKind::FlowTime)
//!     .job(0.0, vec![2.0, 8.0])
//!     .job(0.0, vec![9.0, 3.0])
//!     .job(1.0, vec![4.0, 4.0])
//!     .build()
//!     .unwrap();
//!
//! // The SPAA'18 algorithm with rejection budget ε = 0.25.
//! let scheduler = FlowScheduler::with_eps(0.25).unwrap();
//! let outcome = scheduler.run(&instance);
//!
//! // The schedule satisfies every model invariant…
//! let report = validate_log(&instance, &outcome.log, &ValidationConfig::flow_time());
//! assert!(report.is_valid());
//!
//! // …and the run certifies a lower bound on OPT via its feasible dual.
//! let metrics = Metrics::compute(&instance, &outcome.log, 2.0);
//! let lb = flow_lower_bound(&instance, Some(outcome.dual.objective()));
//! assert!(metrics.flow.flow_all >= lb.value - 1e-9);
//! ```

#![warn(missing_docs)]

pub use osr_baselines as baselines;
pub use osr_core as core;
pub use osr_dstruct as dstruct;
pub use osr_model as model;
pub use osr_sim as sim;
pub use osr_workload as workload;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use osr_baselines::{
        flow_lower_bound, optimal_flow, srpt_flow, yds_energy, AvrScheduler, DispatchRule,
        GreedyScheduler, ImmediateRejectScheduler, LocalOrder, SpeedAugScheduler,
    };
    pub use osr_core::energyflow::{EnergyFlowParams, EnergyFlowScheduler};
    pub use osr_core::energymin::{EnergyMinParams, EnergyMinScheduler};
    pub use osr_core::{bounds, FlowOutcome, FlowParams, FlowScheduler, QueueBackend, Thresholds};
    pub use osr_model::{
        Instance, InstanceBuilder, InstanceKind, Job, JobId, MachineId, Metrics, ScheduleLog,
    };
    pub use osr_sim::{
        render_gantt, run_validated, validate_log, DecisionTrace, OnlineScheduler, SummaryStats,
        ValidationConfig,
    };
    pub use osr_workload::{EnergyWorkload, FlowWorkload};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_links_everything() {
        let inst = InstanceBuilder::new(1, InstanceKind::FlowTime)
            .job(0.0, vec![1.0])
            .build()
            .unwrap();
        let out = FlowScheduler::with_eps(0.5).unwrap().run(&inst);
        assert_eq!(out.log.len(), 1);
    }
}
